// Allocation effects. The walker below records, per function body, every
// syntactically-decidable heap-allocation site: escaping composite
// literals, make/new, append growth, string↔[]byte conversions,
// interface boxing at call sites and assignments, escaping closures,
// goroutine spawns, and calls into a small table of known-allocating
// stdlib functions (fmt.Sprintf, errors.New, ...). Index.Resolve closes
// the per-function counts transitively over the call graph, exactly as
// it closes lock/IO/blocking effects, so allocbudget can charge an
// annotated hot path for an allocation three packages away and name the
// call chain that reaches it.
//
// The model is deliberately a static over-approximation of what the
// compiler's escape analysis will do at -m: a site counts when the
// construct *can* allocate, not when it provably does. Budgets are
// therefore defined over this static measure (DESIGN.md §38); the
// runtime ground truth is pinned separately by testing.AllocsPerRun
// guards. Three rules keep the measure honest on real hot paths:
//
//   - Cold branches don't count. A site inside an if/case body that
//     terminates early (return/continue/goto/panic) is an error or
//     exit path, not the steady state, and is dropped at collection.
//   - Loops are unbounded by default. An always-class site inside a
//     `for {}`, `for cond {}`, or map/channel range promotes to
//     per-iteration — no finite budget covers it. Ranging over a
//     slice, array, or string is the batch/packet-loop idiom and is
//     exempt: its sites count once.
//   - Growth is amortized. append and map-insert sites are a separate
//     amortized class — geometric growth spreads their cost to O(1)
//     per op — and never promote to unbounded. allocfree admits them;
//     allocbudget budgets only the always class.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"centuryscale/internal/lint/typeutil"
)

// An AllocClass classifies one allocation site.
type AllocClass uint8

const (
	// AllocAlways sites run once per call of the enclosing function on
	// the steady (non-cold) path.
	AllocAlways AllocClass = iota
	// AllocAmortized sites (append growth, map insert) cost O(1) per
	// operation under geometric growth.
	AllocAmortized
	// AllocPerIter sites sit inside an unbounded loop: no finite
	// per-call budget covers them.
	AllocPerIter
)

// An AllocSite is one syntactic heap-allocation site.
type AllocSite struct {
	What  string // stable human-readable description ("make", "interface boxing", ...)
	Class AllocClass
}

// An AllocCall is one statically-resolved call recorded for transitive
// allocation accounting. Unlike FuncSummary.Calls, multiplicity is
// preserved — calling an allocating helper twice costs twice — and
// cold-branch calls are dropped.
type AllocCall struct {
	Callee string
	InLoop bool // inside an unbounded loop (batch ranges excluded)
}

// An AllocEffect is the resolved transitive allocation account of one
// function: how many always-class and amortized-class allocations a
// call performs through every statically-resolved callee, and whether
// any path reaches an allocation inside an unbounded loop.
type AllocEffect struct {
	Always    int
	Amortized int
	Unbounded bool
}

// allocSaturate caps transitive counts. Budgets are single digits; any
// count past the cap reads the same ("over any budget"), and a small
// cap bounds the Resolve fixpoint under recursion.
const allocSaturate = 64

func satAdd(a, b int) int {
	if s := a + b; s < allocSaturate {
		return s
	}
	return allocSaturate
}

// allocFuncs maps package path → package-level functions whose result
// is a fresh heap allocation. One site per call; argument boxing is
// accounted separately at the call site.
var allocFuncs = map[string]map[string]bool{
	"fmt":     {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true},
	"errors":  {"New": true},
	"strconv": {"Itoa": true, "Quote": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true},
	"strings": {"Join": true, "Repeat": true, "Split": true, "Fields": true, "ToLower": true, "ToUpper": true, "ReplaceAll": true, "Clone": true},
	"bytes":   {"Join": true, "Repeat": true, "Split": true, "ToLower": true, "ToUpper": true, "Clone": true},
	"sort":    {"Slice": true, "SliceStable": true},
}

// allocMethods maps receiver (pkg, type) → methods that allocate their
// result.
var allocMethods = map[[2]string]map[string]bool{
	{"time", "Time"}:     {"Format": true, "String": true},
	{"time", "Duration"}: {"String": true},
}

// allocCallName returns the table description for a known-allocating
// stdlib call, or "".
func allocCallName(fn *types.Func) string {
	path := typeutil.PkgPath(fn)
	if named := typeutil.ReceiverNamed(fn); named != nil {
		key := [2]string{typeutil.PkgPath(named.Obj()), named.Obj().Name()}
		if names, ok := allocMethods[key]; ok && names[fn.Name()] {
			return "call to " + key[0] + "." + key[1] + "." + fn.Name()
		}
		return ""
	}
	if names, ok := allocFuncs[path]; ok && names[fn.Name()] {
		return "call to " + path + "." + fn.Name()
	}
	return ""
}

// allocCtx carries the statement-walk context.
type allocCtx struct {
	loop bool // inside an unbounded loop
	cold bool // inside an early-terminating branch
}

func (c allocCtx) withLoop() allocCtx          { c.loop = true; return c }
func (c allocCtx) withCold(cold bool) allocCtx { c.cold = c.cold || cold; return c }

type allocWalker struct {
	info *types.Info
	s    *FuncSummary
	// skipLits marks function literals consumed directly by a call
	// (arguments like sort.Search's predicate, or immediate
	// invocations): assumed non-escaping and not walked.
	skipLits map[*ast.FuncLit]bool
	// taken marks composite literals already counted via &T{} so the
	// inner CompositeLit visit doesn't double-count.
	taken map[*ast.CompositeLit]bool
}

// walkAllocs is pass 4 of summarizeBody: a statement walk tracking loop
// and cold context, with a leaf expression scan per statement.
func walkAllocs(info *types.Info, s *FuncSummary, body *ast.BlockStmt) {
	w := &allocWalker{
		info:     info,
		s:        s,
		skipLits: make(map[*ast.FuncLit]bool),
		taken:    make(map[*ast.CompositeLit]bool),
	}
	w.stmts(body.List, allocCtx{})
}

func (w *allocWalker) add(what string, amortized bool, ctx allocCtx) {
	if ctx.cold {
		return
	}
	class := AllocAlways
	switch {
	case amortized:
		class = AllocAmortized
	case ctx.loop:
		class = AllocPerIter
	}
	w.s.Allocs = append(w.s.Allocs, AllocSite{What: what, Class: class})
}

func (w *allocWalker) stmts(list []ast.Stmt, ctx allocCtx) {
	for _, st := range list {
		w.stmt(st, ctx)
	}
}

func (w *allocWalker) stmt(st ast.Stmt, ctx allocCtx) {
	switch st := st.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(st.List, ctx)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, ctx)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, ctx)
		}
		w.scan(st.Cond, ctx)
		w.stmts(st.Body.List, ctx.withCold(w.terminates(st.Body.List)))
		switch e := st.Else.(type) {
		case nil:
		case *ast.BlockStmt:
			w.stmts(e.List, ctx.withCold(w.terminates(e.List)))
		default:
			w.stmt(e, ctx)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, ctx)
		}
		w.scan(st.Cond, ctx)
		if st.Post != nil {
			w.stmt(st.Post, ctx)
		}
		w.stmts(st.Body.List, ctx.withLoop())
	case *ast.RangeStmt:
		w.scan(st.X, ctx)
		inner := ctx
		if !rangeIsBatch(w.info.TypeOf(st.X)) {
			inner = ctx.withLoop()
		}
		w.stmts(st.Body.List, inner)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, ctx)
		}
		w.scan(st.Tag, ctx)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.scan(e, ctx)
			}
			w.stmts(cc.Body, ctx.withCold(w.terminates(cc.Body)))
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, ctx)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			w.stmts(cc.Body, ctx.withCold(w.terminates(cc.Body)))
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.stmt(cc.Comm, ctx)
			}
			w.stmts(cc.Body, ctx.withCold(w.terminates(cc.Body)))
		}
	case *ast.GoStmt:
		// The spawned body runs on another goroutine: like the other
		// summary effects it is outside the caller's synchronous
		// account, but the g itself is a heap allocation.
		w.add("goroutine spawn", false, ctx)
		for _, a := range st.Call.Args {
			if _, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				continue
			}
			w.scan(a, ctx)
		}
	case *ast.DeferStmt:
		// Deferred calls run exactly once per invocation, at exit:
		// their arguments and effects count. Deferred literal bodies
		// are not walked (they overwhelmingly unlock/close).
		w.scan(st.Call, ctx)
	default:
		w.scan(st, ctx)
	}
}

// scan inspects the expressions of one statement (or a sub-expression)
// for allocation sites. It never crosses into function-literal bodies.
func (w *allocWalker) scan(n ast.Node, ctx allocCtx) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if w.skipLits[n] {
				return false
			}
			// A literal not consumed directly by a call escapes: its
			// closure context is heap-allocated.
			w.add("closure", false, ctx)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.taken[cl] = true
					w.add("&composite literal", false, ctx)
				}
			}
		case *ast.CompositeLit:
			if w.taken[n] {
				return true
			}
			switch w.typeOf(n).(type) {
			case *types.Slice:
				w.add("slice literal", false, ctx)
			case *types.Map:
				w.add("map literal", false, ctx)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && w.info.Types[n].Value == nil {
				if b, ok := w.typeOf(n).(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.add("string concatenation", false, ctx)
				}
			}
		case *ast.CallExpr:
			// Mark literal operands before their visit: a FuncLit that
			// is the callee or a direct argument is assumed
			// non-escaping (immediate invocation, sort.Search-style
			// predicates) and contributes nothing.
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				w.skipLits[lit] = true
			}
			for _, a := range n.Args {
				if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
					w.skipLits[lit] = true
				}
			}
			w.call(n, ctx)
		case *ast.AssignStmt:
			w.assign(n, ctx)
		case *ast.ValueSpec:
			if n.Type != nil {
				to := w.info.TypeOf(n.Type)
				for _, v := range n.Values {
					if w.info.Types[v].Value != nil {
						continue
					}
					if boxes(w.info.TypeOf(v), to) {
						w.add("interface boxing", false, ctx)
					}
				}
			}
		}
		return true
	})
}

// call records the sites of one call expression: conversions, builtin
// allocators, argument boxing, table hits, and the transitive edge.
func (w *allocWalker) call(call *ast.CallExpr, ctx allocCtx) {
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && w.info.Types[call.Args[0]].Value == nil {
			if what := convAlloc(w.info.TypeOf(call.Args[0]), tv.Type); what != "" {
				w.add(what, false, ctx)
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				w.add("make", false, ctx)
			case "new":
				w.add("new", false, ctx)
			case "append":
				w.add("append growth", true, ctx)
			}
			return
		}
	}

	// Interface boxing of concrete arguments at the call boundary. The
	// signature comes from the call operand, so this covers dynamic
	// calls (function values, interface methods) too.
	if sig, ok := w.typeOf(call.Fun).(*types.Signature); ok {
		params := sig.Params()
		for i, arg := range call.Args {
			if w.info.Types[arg].Value != nil {
				continue // constants box from static data
			}
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					continue // spread: no per-element conversion
				}
				if sl, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
					pt = sl.Elem()
				}
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if boxes(w.info.TypeOf(arg), pt) {
				w.add("interface boxing", false, ctx)
			}
		}
	}

	callee := typeutil.Callee(w.info, call)
	if callee == nil {
		return
	}
	if what := allocCallName(callee); what != "" {
		w.add(what, false, ctx)
		// Table functions are charged here as direct sites; Resolve
		// consults only indexed summaries, so no double count.
	}
	if name := Name(callee); name != "" && !ctx.cold {
		w.s.AllocCalls = append(w.s.AllocCalls, AllocCall{Callee: name, InLoop: ctx.loop})
	}
}

func (w *allocWalker) assign(a *ast.AssignStmt, ctx allocCtx) {
	// m[k] = v may grow the table: amortized, like append.
	for _, lhs := range a.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, isMap := w.typeOf(ix.X).(*types.Map); isMap {
				w.add("map insert", true, ctx)
			}
		}
	}
	// Boxing on assignment to an interface-typed lvalue. := never
	// boxes (the variable takes the operand's type).
	if a.Tok == token.ASSIGN && len(a.Lhs) == len(a.Rhs) {
		for i := range a.Lhs {
			if w.info.Types[a.Rhs[i]].Value != nil {
				continue
			}
			if boxes(w.info.TypeOf(a.Rhs[i]), w.info.TypeOf(a.Lhs[i])) {
				w.add("interface boxing", false, ctx)
			}
		}
	}
}

// typeOf returns the underlying type of e, nil-safe.
func (w *allocWalker) typeOf(e ast.Expr) types.Type {
	t := w.info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// terminates reports whether a statement list ends by leaving the
// enclosing flow early: return, continue, goto, or panic. Such branches
// are error/exit paths, cold by the model's definition. break is not
// terminating — a case body's implicit fallthrough-to-end is the steady
// path, and an explicit break must classify identically.
func (w *allocWalker) terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch st := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE || st.Tok == token.GOTO
	case *ast.BlockStmt:
		return w.terminates(st.List)
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := w.info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return true
				}
			}
		}
	}
	return false
}

// rangeIsBatch reports whether ranging over t is the bounded batch-loop
// idiom: slices, arrays (and pointers to them), strings, and integer
// ranges iterate a known-finite collection — the packet loop. Map,
// channel, and func ranges are unbounded by the model.
func rangeIsBatch(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, isArr := u.Elem().Underlying().(*types.Array)
		return isArr
	case *types.Basic:
		return u.Info()&(types.IsString|types.IsInteger) != 0
	}
	return false
}

// boxes reports whether assigning a value of type from to a location of
// type to is an allocating interface conversion: to is an interface,
// from is concrete, and from's representation is not a single pointer
// word (pointers, channels, maps, and funcs store directly in the
// interface data word).
func boxes(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	switch u := from.Underlying().(type) {
	case *types.Interface:
		return false // interface-to-interface copies the word pair
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.UnsafePointer
	}
	return true
}

// convAlloc names the allocation a conversion from → to performs, or ""
// when the conversion is free. string↔[]byte/[]rune copy; rune→string
// builds a fresh string.
func convAlloc(from, to types.Type) string {
	if from == nil || to == nil {
		return ""
	}
	fs, ts := isStringT(from), isStringT(to)
	switch {
	case fs && (isByteSlice(to) || isRuneSlice(to)):
		return "string-to-slice conversion"
	case ts && (isByteSlice(from) || isRuneSlice(from)):
		return "slice-to-string conversion"
	case ts && isIntT(from):
		return "rune-to-string conversion"
	}
	return ""
}

func isStringT(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIntT(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Rune
}

// directAllocEffect seeds the fixpoint with a summary's own sites.
func directAllocEffect(s *FuncSummary) AllocEffect {
	var e AllocEffect
	for _, a := range s.Allocs {
		switch a.Class {
		case AllocAlways:
			e.Always = satAdd(e.Always, 1)
		case AllocAmortized:
			e.Amortized = satAdd(e.Amortized, 1)
		case AllocPerIter:
			e.Unbounded = true
		}
	}
	return e
}

// AllocsOf returns the resolved transitive allocation effect for a
// qualified function name. Valid after Resolve; ok is false for
// functions outside every loaded package.
func (ix *Index) AllocsOf(name string) (AllocEffect, bool) {
	if ix == nil || ix.allocs == nil {
		return AllocEffect{}, false
	}
	e := ix.allocs[name]
	if e == nil {
		return AllocEffect{}, false
	}
	return *e, true
}

// AllocWitness returns a shortest call chain (function names, starting
// at from) ending at a function with a direct always-class allocation
// site, plus that site's description. BFS over non-loop AllocCalls with
// sorted expansion keeps the witness deterministic. nil when from
// reaches no always-class site.
func (ix *Index) AllocWitness(from string) ([]string, string) {
	if ix == nil || ix.allocs == nil {
		return nil, ""
	}
	type node struct {
		name string
		path []string
	}
	seen := map[string]bool{from: true}
	queue := []node{{from, []string{from}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		s := ix.funcs[n.name]
		if s == nil {
			continue
		}
		for _, a := range s.Allocs {
			if a.Class == AllocAlways {
				return n.path, a.What
			}
		}
		var next []string
		for _, c := range s.AllocCalls {
			if c.InLoop || seen[c.Callee] {
				continue
			}
			if e := ix.allocs[c.Callee]; e == nil || e.Always == 0 {
				continue
			}
			seen[c.Callee] = true
			next = append(next, c.Callee)
		}
		sort.Strings(next)
		for _, c := range next {
			queue = append(queue, node{c, append(append([]string(nil), n.path...), c)})
		}
	}
	return nil, ""
}

// AllocUnboundedWitness returns a call chain from from to the cause of
// an unbounded allocation effect — either a function with a direct
// per-iteration site, or an allocating callee invoked inside an
// unbounded loop — plus a description of that cause.
func (ix *Index) AllocUnboundedWitness(from string) ([]string, string) {
	if ix == nil || ix.allocs == nil {
		return nil, ""
	}
	type node struct {
		name string
		path []string
	}
	seen := map[string]bool{from: true}
	queue := []node{{from, []string{from}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		s := ix.funcs[n.name]
		if s == nil {
			continue
		}
		for _, a := range s.Allocs {
			if a.Class == AllocPerIter {
				return n.path, a.What + " in an unbounded loop"
			}
		}
		for _, c := range s.AllocCalls {
			if !c.InLoop {
				continue
			}
			if e := ix.allocs[c.Callee]; e != nil && (e.Always > 0 || e.Unbounded) {
				return append(append([]string(nil), n.path...), c.Callee), "allocating call in an unbounded loop"
			}
		}
		var next []string
		for _, c := range s.AllocCalls {
			if seen[c.Callee] {
				continue
			}
			if e := ix.allocs[c.Callee]; e == nil || !e.Unbounded {
				continue
			}
			seen[c.Callee] = true
			next = append(next, c.Callee)
		}
		sort.Strings(next)
		for _, c := range next {
			queue = append(queue, node{c, append(append([]string(nil), n.path...), c)})
		}
	}
	return nil, ""
}
