package dataflow

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// siteStrings renders a summary's sites compactly for golden comparison.
func siteStrings(s *FuncSummary) []string {
	var out []string
	for _, a := range s.Allocs {
		tag := ""
		switch a.Class {
		case AllocAmortized:
			tag = " amortized"
		case AllocPerIter:
			tag = " periter"
		}
		out = append(out, a.What+tag)
	}
	return out
}

func TestAllocSites(t *testing.T) {
	const prelude = `package p

import (
	"errors"
	"fmt"
	"sort"
)

type T struct{ n int }

type rec struct{ k, v string }

func sink(v any)      {}
func sinkErr(e error) { _ = e }
func work() int       { return 0 }
var _ = errors.New
var _ = fmt.Sprintf
var _ = sort.Search
`
	tests := []struct {
		name string
		src  string
		fn   string
		want []string
	}{
		{
			name: "composite literals and make/new",
			src: `func f() {
	p := &T{n: 1}
	s := []int{1, 2}
	m := map[string]int{}
	b := make([]byte, 8)
	q := new(T)
	_, _, _, _, _ = p, s, m, b, q
}`,
			fn:   "p.f",
			want: []string{"&composite literal", "slice literal", "map literal", "make", "new"},
		},
		{
			name: "value struct literal is not a site",
			src: `func f() {
	v := T{n: 1}
	_ = v
}`,
			fn:   "p.f",
			want: nil,
		},
		{
			name: "cold error branches are dropped",
			src: `func f(err error) error {
	if err != nil {
		return fmt.Errorf("wrap: %w", err)
	}
	return nil
}`,
			fn:   "p.f",
			want: nil,
		},
		{
			name: "table call plus boxing on the steady path",
			src: `func f(n int) string {
	return fmt.Sprintf("%d", n)
}`,
			fn:   "p.f",
			want: []string{"interface boxing", "call to fmt.Sprintf"},
		},
		{
			name: "constants do not box",
			src: `func f() string {
	return fmt.Sprintf("%d-%s", 42, "x")
}`,
			fn:   "p.f",
			want: []string{"call to fmt.Sprintf"},
		},
		{
			name: "pointer-shaped values do not box",
			src: `func f(p *T, m map[string]int, e error) {
	sink(p)
	sink(m)
	sink(e)
}`,
			fn:   "p.f",
			want: nil,
		},
		{
			name: "interface boxing on assignment and var decl",
			src: `func f(n int) {
	var v any
	v = n
	var w any = n
	_, _ = v, w
}`,
			fn:   "p.f",
			want: []string{"interface boxing", "interface boxing"},
		},
		{
			name: "conversions",
			src: `func f(s string, b []byte, r rune) {
	_ = []byte(s)
	_ = string(b)
	_ = []rune(s)
	_ = string(r)
}`,
			fn:   "p.f",
			want: []string{"string-to-slice conversion", "slice-to-string conversion", "string-to-slice conversion", "rune-to-string conversion"},
		},
		{
			name: "append and map insert are amortized",
			src: `func f(s []int, m map[string]int) []int {
	s = append(s, 1)
	m["k"] = 2
	return s
}`,
			fn:   "p.f",
			want: []string{"append growth amortized", "map insert amortized"},
		},
		{
			name: "string concatenation",
			src: `func f(a, b string) string {
	return a + b
}`,
			fn:   "p.f",
			want: []string{"string concatenation"},
		},
		{
			name: "unbounded loop promotes always sites",
			src: `func f(done chan struct{}) {
	for {
		p := &T{}
		_ = p
		select {
		case <-done:
			return
		default:
		}
	}
}`,
			fn:   "p.f",
			want: []string{"&composite literal periter"},
		},
		{
			name: "slice range is the batch loop",
			src: `func f(recs []rec) {
	for _, r := range recs {
		p := &T{}
		_, _ = p, r
	}
}`,
			fn:   "p.f",
			want: []string{"&composite literal"},
		},
		{
			name: "map range is unbounded",
			src: `func f(m map[string]int) {
	for k := range m {
		p := &T{}
		_, _ = p, k
	}
}`,
			fn:   "p.f",
			want: []string{"&composite literal periter"},
		},
		{
			name: "amortized never promotes",
			src: `func f(done chan struct{}) {
	var s []int
	for {
		s = append(s, 1)
		select {
		case <-done:
			return
		default:
		}
	}
}`,
			fn:   "p.f",
			want: []string{"append growth amortized"},
		},
		{
			name: "goroutine spawn counts once, body excluded",
			src: `func f() {
	go func() {
		p := &T{}
		_ = p
	}()
}`,
			fn:   "p.f",
			want: []string{"goroutine spawn"},
		},
		{
			name: "call-arg closure is not a site",
			src: `func f(n int) int {
	return sort.Search(n, func(i int) bool { return i > 2 })
}`,
			fn:   "p.f",
			want: nil,
		},
		{
			name: "escaping closure is a site",
			src: `func f() func() int {
	n := 1
	g := func() int { return n }
	return g
}`,
			fn:   "p.f",
			want: []string{"closure"},
		},
		{
			name: "terminating case body is cold",
			src: `func f(err error) error {
	switch {
	case err != nil:
		return fmt.Errorf("bad: %w", err)
	default:
		work()
	}
	return nil
}`,
			fn:   "p.f",
			want: nil,
		},
		{
			name: "non-terminating case body is hot",
			src: `func f(n int) {
	switch n {
	case 1:
		sink(n)
	}
}`,
			fn:   "p.f",
			want: []string{"interface boxing"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			sums := summarizePkg(t, prelude+"\n"+tc.src+"\n")
			s := sums[tc.fn]
			if s == nil {
				t.Fatalf("no summary for %s (have %v)", tc.fn, allocTestKeys(sums))
			}
			if got := siteStrings(s); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("sites = %v, want %v", got, tc.want)
			}
		})
	}
}

func allocTestKeys(m map[string]*FuncSummary) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestAllocResolveTransitive(t *testing.T) {
	const src = `package p

import "errors"

type T struct{ n int }

func leaf() error { return errors.New("x") }

func mid() error { return leaf() }

func root() error { return mid() }

func twice() {
	leaf()
	leaf()
}

func drain(done chan struct{}) {
	for {
		leaf()
		select {
		case <-done:
			return
		default:
		}
	}
}

func batch(errs []error) {
	for range errs {
		leaf()
	}
}

func grow(s []int) []int { return append(s, 1) }

func growCaller(s []int) []int { return grow(s) }
`
	sums := summarizePkg(t, src)
	ix := NewIndex()
	ix.Add(sums)
	ix.Resolve()

	check := func(name string, want AllocEffect) {
		t.Helper()
		got, ok := ix.AllocsOf(name)
		if !ok {
			t.Fatalf("AllocsOf(%s): not indexed", name)
		}
		if got != want {
			t.Errorf("AllocsOf(%s) = %+v, want %+v", name, got, want)
		}
	}
	check("p.leaf", AllocEffect{Always: 1})
	check("p.mid", AllocEffect{Always: 1})
	check("p.root", AllocEffect{Always: 1})
	check("p.twice", AllocEffect{Always: 2})
	check("p.drain", AllocEffect{Unbounded: true})
	check("p.batch", AllocEffect{Always: 1})
	check("p.grow", AllocEffect{Amortized: 1})
	check("p.growCaller", AllocEffect{Amortized: 1})

	// The witness chain names the path from the root to the function
	// with the direct site.
	chain, site := ix.AllocWitness("p.root")
	if want := []string{"p.root", "p.mid", "p.leaf"}; !reflect.DeepEqual(chain, want) {
		t.Errorf("AllocWitness(p.root) chain = %v, want %v", chain, want)
	}
	if site != "call to errors.New" {
		t.Errorf("AllocWitness(p.root) site = %q", site)
	}

	chain, desc := ix.AllocUnboundedWitness("p.drain")
	if want := []string{"p.drain", "p.leaf"}; !reflect.DeepEqual(chain, want) {
		t.Errorf("AllocUnboundedWitness(p.drain) chain = %v, want %v", chain, want)
	}
	if desc != "allocating call in an unbounded loop" {
		t.Errorf("AllocUnboundedWitness(p.drain) desc = %q", desc)
	}
}

func TestAllocResolveRecursionSaturates(t *testing.T) {
	const src = `package p

import "errors"

func ping(n int) error {
	if n == 0 {
		return nil
	}
	errors.New("x")
	return pong(n - 1)
}

func pong(n int) error { return ping(n) }
`
	sums := summarizePkg(t, src)
	ix := NewIndex()
	ix.Add(sums)
	ix.Resolve() // must terminate
	got, ok := ix.AllocsOf("p.ping")
	if !ok || got.Always != allocSaturate {
		t.Fatalf("AllocsOf(p.ping) = %+v ok=%v, want saturated Always=%d", got, ok, allocSaturate)
	}
}

func TestAllocPerIterWitnessDirect(t *testing.T) {
	src := fmt.Sprintf(`package p

func spin(done chan struct{}) {
	for {
		b := make([]byte, %d)
		_ = b
		select {
		case <-done:
			return
		default:
		}
	}
}
`, 16)
	sums := summarizePkg(t, src)
	ix := NewIndex()
	ix.Add(sums)
	ix.Resolve()
	chain, desc := ix.AllocUnboundedWitness("p.spin")
	if !reflect.DeepEqual(chain, []string{"p.spin"}) || desc != "make in an unbounded loop" {
		t.Fatalf("witness = %v %q", chain, desc)
	}
}
