// Reaching definitions over the CFG: the classic gen/kill worklist,
// answering "which assignments to this variable can be live at this
// use". centurytime uses it to bound multiplication operands — a count
// whose every reaching definition is a known constant is provably safe
// (or provably overflowing) where an opaque one must be assumed
// century-scale.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Def is one definition of a local variable. Rhs is the defining
// expression when the assignment pins one (x := e, x = e); it is nil
// when the value is opaque at this layer — range variables, tuple
// assignments, x++/x--, compound assignment, or `var x T` zero values.
type Def struct {
	Var *types.Var
	Rhs ast.Expr
}

// Reaching holds the fixpoint solution for one function body.
type Reaching struct {
	cfg  *CFG
	info *types.Info

	in map[*Block]map[Def]bool

	// untracked marks variables whose definition set cannot be trusted:
	// address-taken locals, variables assigned inside nested function
	// literals (which run at unknown times), and anything that is not a
	// function-local variable at all.
	untracked map[*types.Var]bool
	locals    map[*types.Var]bool
}

// ReachingDefs solves reaching definitions for body's CFG. The body
// must be the same one the CFG was built from.
func ReachingDefs(cfg *CFG, body *ast.BlockStmt, info *types.Info) *Reaching {
	r := &Reaching{
		cfg:       cfg,
		info:      info,
		in:        make(map[*Block]map[Def]bool),
		untracked: make(map[*types.Var]bool),
		locals:    make(map[*types.Var]bool),
	}
	r.classifyVars(body)

	gen := make(map[*Block]map[*types.Var]Def)
	kill := make(map[*Block]map[*types.Var]bool)
	for _, b := range cfg.Blocks {
		g := make(map[*types.Var]Def)
		k := make(map[*types.Var]bool)
		for _, n := range b.Nodes {
			for _, d := range r.defsIn(n) {
				g[d.Var] = d // later defs in the block shadow earlier ones
				k[d.Var] = true
			}
		}
		gen[b] = g
		kill[b] = k
	}

	preds := make(map[*Block][]*Block)
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	out := make(map[*Block]map[Def]bool)
	for _, b := range cfg.Blocks {
		r.in[b] = make(map[Def]bool)
		out[b] = make(map[Def]bool)
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			inB := r.in[b]
			for _, p := range preds[b] {
				for d := range out[p] {
					if !inB[d] {
						inB[d] = true
						changed = true
					}
				}
			}
			outB := out[b]
			for d := range inB {
				if kill[b][d.Var] {
					continue
				}
				if !outB[d] {
					outB[d] = true
					changed = true
				}
			}
			for _, d := range gen[b] {
				if !outB[d] {
					outB[d] = true
					changed = true
				}
			}
		}
	}
	return r
}

// classifyVars records which variables are trackable: local to this
// body, never address-taken, and never assigned inside a nested
// function literal.
func (r *Reaching) classifyVars(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v := r.varOf(id); v != nil {
						r.untracked[v] = true
					}
				}
			}
		case *ast.FuncLit:
			// Assignments inside the literal run when it is called,
			// which the CFG does not model: poison its targets.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.AssignStmt:
					for _, lhs := range m.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
							if v := r.varOf(id); v != nil {
								r.untracked[v] = true
							}
						}
					}
				case *ast.IncDecStmt:
					if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
						if v := r.varOf(id); v != nil {
							r.untracked[v] = true
						}
					}
				case *ast.UnaryExpr:
					if m.Op == token.AND {
						if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
							if v := r.varOf(id); v != nil {
								r.untracked[v] = true
							}
						}
					}
				}
				return true
			})
			return false
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v, ok := r.info.Defs[id].(*types.Var); ok {
							r.locals[v] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				if v, ok := r.info.Defs[id].(*types.Var); ok {
					r.locals[v] = true
				}
			}
		}
		return true
	})
}

func (r *Reaching) varOf(id *ast.Ident) *types.Var {
	if v, ok := r.info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := r.info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// defsIn extracts the definitions a single CFG node performs.
func (r *Reaching) defsIn(n ast.Node) []Def {
	var defs []Def
	add := func(e ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if v := r.varOf(id); v != nil {
			defs = append(defs, Def{Var: v, Rhs: rhs})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		switch {
		case n.Tok == token.ASSIGN || n.Tok == token.DEFINE:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					add(lhs, n.Rhs[i])
				}
			} else { // tuple: x, y := f()
				for _, lhs := range n.Lhs {
					add(lhs, nil)
				}
			}
		default: // op-assign (+=, *=, ...): value depends on the old one
			add(n.Lhs[0], nil)
		}
	case *ast.IncDecStmt:
		add(n.X, nil)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if len(vs.Values) == len(vs.Names) {
					add(name, vs.Values[i])
				} else {
					add(name, nil)
				}
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			add(n.Key, nil)
		}
		if n.Value != nil {
			add(n.Value, nil)
		}
	}
	return defs
}

// At returns the definitions of id's variable that can reach this use.
// ok is false when the variable is not trackable (not a local, address
// taken, assigned in a closure, or no definition found) — callers must
// treat that as "value unknown".
func (r *Reaching) At(id *ast.Ident) ([]Def, bool) {
	v, _ := r.info.Uses[id].(*types.Var)
	if v == nil || r.untracked[v] || !r.locals[v] {
		return nil, false
	}
	blk, node := r.locate(id.Pos())
	if blk == nil {
		return nil, false
	}
	live := make(map[Def]bool)
	for d := range r.in[blk] {
		if d.Var == v {
			live[d] = true
		}
	}
	// Apply the block's own definitions that complete before the use.
	for _, n := range blk.Nodes {
		if n == node || n.End() > id.Pos() {
			continue
		}
		for _, d := range r.defsIn(n) {
			if d.Var != v {
				continue
			}
			for old := range live {
				delete(live, old)
			}
			live[d] = true
		}
	}
	if len(live) == 0 {
		return nil, false
	}
	out := make([]Def, 0, len(live))
	for d := range live {
		out = append(out, d)
	}
	return out, true
}

// locate finds the block and node containing pos.
func (r *Reaching) locate(pos token.Pos) (*Block, ast.Node) {
	for _, b := range r.cfg.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				return b, n
			}
		}
	}
	return nil, nil
}
