// Interprocedural call summaries. Each function declaration in an
// analyzed package gets a FuncSummary of the effects centurylint cares
// about; an Index aggregates summaries across every package the driver
// loads and closes them transitively over the call graph, so an
// analyzer inspecting a call site in package a can see that the callee
// three packages away fsyncs a file or loops forever.
//
// Summaries are keyed by qualified name ("pkg/path.Func" or
// "pkg/path.(Type).Method"), which is exactly what the loader's export
// data identifies, so the index works across any set of packages loaded
// in one run. Calls through interfaces or function values resolve to no
// summary and contribute nothing — the suite stays conservative in the
// no-false-positive direction at dynamic dispatch, and the analyzers
// that need a hard guarantee (lockedio's WAL contract) keep their
// package-local precision unchanged.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"centuryscale/internal/lint/typeutil"
)

// ioFuncs maps package path → package-level functions that block on
// I/O. A nil set means every function in the package.
var ioFuncs = map[string]map[string]bool{
	"net":      nil,
	"net/http": nil,
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
		"WriteFile": true, "ReadFile": true, "ReadDir": true,
		"Mkdir": true, "MkdirAll": true, "Remove": true, "RemoveAll": true,
		"Rename": true, "Truncate": true,
	},
	"encoding/json": {"Marshal": true, "MarshalIndent": true},
	"io":            {"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true},
}

// ioMethods maps receiver (pkg, type) → methods that block on I/O.
// A nil set means every method.
var ioMethods = map[[2]string]map[string]bool{
	{"os", "File"}: {
		"Write": true, "WriteString": true, "WriteAt": true, "ReadFrom": true,
		"Read": true, "ReadAt": true, "Sync": true, "Truncate": true, "Close": true,
	},
	{"encoding/json", "Encoder"}: {"Encode": true},
	{"encoding/json", "Decoder"}: {"Decode": true},
	{"bufio", "Writer"}:          {"Flush": true, "ReadFrom": true},
}

// DirectIO returns a human-readable name for the blocking I/O fn
// performs itself, or "".
func DirectIO(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	named := typeutil.ReceiverNamed(fn)
	path := typeutil.PkgPath(fn)
	// Package-level functions, plus every function and method of the
	// all-blocking packages (net, net/http — including their interface
	// methods, whose object also carries the package).
	if names, ok := ioFuncs[path]; ok && (names == nil || (named == nil && names[fn.Name()])) {
		if named != nil {
			return path + "." + named.Obj().Name() + "." + fn.Name()
		}
		return path + "." + fn.Name()
	}
	if named != nil {
		key := [2]string{typeutil.PkgPath(named.Obj()), named.Obj().Name()}
		if names, ok := ioMethods[key]; ok && (names == nil || names[fn.Name()]) {
			return key[0] + "." + key[1] + "." + fn.Name()
		}
	}
	return ""
}

// Name returns the qualified summary key for fn: "pkg/path.Func" for a
// package-level function, "pkg/path.(Recv).Method" for a method
// (pointerness ignored). Empty for builtins and error.Error-style
// objects with no package.
func Name(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if named := typeutil.ReceiverNamed(fn); named != nil {
		return fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// A FuncSummary records the effects of one function body that
// centurylint's flow analyzers consume. After Index.Resolve, the
// effect fields are transitive over the static call graph.
type FuncSummary struct {
	// Name is the qualified key ("" for function literals summarized at
	// their use site).
	Name string

	// IO names the first blocking I/O this function reaches ("" if
	// none). Synchronous code only: nested literals, defers, and go
	// statements do not run under the caller's locks.
	IO string

	// Blocking reports that the body cannot reach its own CFG exit: no
	// path from entry escapes its loops via break, return, or goto. A
	// decode loop with a break is not Blocking; `for { work() }` is.
	Blocking bool

	// Stops reports that the body can observe a shutdown signal: it
	// references a context.Context, receives from a struct{} channel,
	// or calls (*sync.WaitGroup).Done. Nested literals count — a
	// watcher goroutine holding the ctx still ties the lifetime.
	Stops bool

	// HasCtxParam reports a context.Context in the signature.
	HasCtxParam bool

	// CallsBackground reports a direct call to context.Background or
	// context.TODO in the synchronous body.
	CallsBackground bool

	// Calls lists qualified names of statically-resolved callees in the
	// synchronous body, for transitive closure.
	Calls []string
}

// summarizeBody computes a FuncSummary for one body. sig may be nil
// (literals summarize their own FuncType separately).
func summarizeBody(info *types.Info, body *ast.BlockStmt) *FuncSummary {
	s := &FuncSummary{}
	seenCall := make(map[string]bool)

	// Blocking is a control-flow fact, not a syntactic one: build the
	// body's CFG and ask whether the exit is reachable. This is what
	// lets a `for { ... break }` decode loop stay non-blocking while
	// `for { work() }` is caught.
	s.Blocking = !reachesExit(NewCFG(body))

	// Pass 1 — synchronous effects: skip nested literals entirely.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			callee := typeutil.Callee(info, n)
			if callee == nil {
				return true
			}
			if typeutil.PkgPath(callee) == "context" && (callee.Name() == "Background" || callee.Name() == "TODO") {
				s.CallsBackground = true
			}
			if io := DirectIO(callee); io != "" && s.IO == "" {
				s.IO = io
			}
			if name := Name(callee); name != "" && !seenCall[name] {
				seenCall[name] = true
				s.Calls = append(s.Calls, name)
			}
		}
		return true
	})

	// Pass 2 — lifetime signals: nested literals included, because a
	// spawned watcher that closes over ctx still stops the whole body.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContext(obj.Type()) {
				s.Stops = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isStopChan(info.TypeOf(n.X)) {
				s.Stops = true
			}
		case *ast.CallExpr:
			if callee := typeutil.Callee(info, n); callee != nil &&
				callee.Name() == "Done" && typeutil.IsMethodOf(callee, "sync", "WaitGroup") {
				s.Stops = true
			}
		}
		return true
	})
	return s
}

// reachesExit reports whether any path from the CFG entry reaches the
// synthetic exit block.
func reachesExit(c *CFG) bool {
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{c.Blocks[0]}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == c.Exit {
			return true
		}
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// SummarizeLit summarizes a function literal at its use site (the
// goroleak path). The literal's own parameters count toward ctx/stop
// detection exactly like a declaration's would.
func SummarizeLit(info *types.Info, lit *ast.FuncLit) *FuncSummary {
	s := summarizeBody(info, lit.Body)
	if tv, ok := info.Types[lit]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			s.HasCtxParam = sigHasContext(sig)
		}
	}
	return s
}

// Summarize builds summaries for every function declaration in the
// files of one type-checked package.
func Summarize(info *types.Info, files []*ast.File) map[string]*FuncSummary {
	out := make(map[string]*FuncSummary)
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			name := Name(fn)
			if name == "" {
				continue
			}
			s := summarizeBody(info, fd.Body)
			s.Name = name
			if sig, ok := fn.Type().(*types.Signature); ok {
				s.HasCtxParam = sigHasContext(sig)
			}
			out[name] = s
		}
	}
	return out
}

func sigHasContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && typeutil.PkgPath(obj) == "context"
}

// isStopChan reports whether t is a receivable channel of struct{} —
// the conventional stop/done signal.
func isStopChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// An Index aggregates function summaries across packages and resolves
// transitive effects over the call graph.
type Index struct {
	funcs map[string]*FuncSummary
}

// NewIndex returns an empty summary index.
func NewIndex() *Index {
	return &Index{funcs: make(map[string]*FuncSummary)}
}

// Add merges one package's summaries into the index. Call Resolve after
// the last Add.
func (ix *Index) Add(sums map[string]*FuncSummary) {
	for name, s := range sums {
		ix.funcs[name] = s
	}
}

// Resolve closes IO, Blocking, and Stops transitively over Calls. Safe
// to call more than once; later Adds require a fresh Resolve.
func (ix *Index) Resolve() {
	for changed := true; changed; {
		changed = false
		for _, s := range ix.funcs {
			for _, callee := range s.Calls {
				t := ix.funcs[callee]
				if t == nil {
					continue
				}
				if s.IO == "" && t.IO != "" {
					s.IO = t.IO
					changed = true
				}
				if t.Blocking && !s.Blocking {
					s.Blocking = true
					changed = true
				}
				if t.Stops && !s.Stops {
					s.Stops = true
					changed = true
				}
			}
		}
	}
}

// Lookup returns the (resolved) summary for a qualified name, or nil
// when the function was not in any loaded package.
func (ix *Index) Lookup(name string) *FuncSummary {
	if ix == nil {
		return nil
	}
	return ix.funcs[name]
}

// ReachesIO returns the blocking I/O the named function transitively
// reaches, or "".
func (ix *Index) ReachesIO(name string) string {
	if s := ix.Lookup(name); s != nil {
		return s.IO
	}
	return ""
}

// BlockingOf evaluates a (possibly literal, unindexed) summary against
// the index: does the body loop forever, directly or through a callee?
func (ix *Index) BlockingOf(s *FuncSummary) bool {
	if s == nil {
		return false
	}
	if s.Blocking {
		return true
	}
	for _, c := range s.Calls {
		if t := ix.Lookup(c); t != nil && t.Blocking {
			return true
		}
	}
	return false
}

// StopsOf evaluates a summary against the index: can the body observe a
// stop signal, directly or through a callee?
func (ix *Index) StopsOf(s *FuncSummary) bool {
	if s == nil {
		return false
	}
	if s.Stops || s.HasCtxParam {
		return true
	}
	for _, c := range s.Calls {
		if t := ix.Lookup(c); t != nil && (t.Stops || t.HasCtxParam) {
			return true
		}
	}
	return false
}
