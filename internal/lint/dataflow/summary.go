// Interprocedural call summaries. Each function declaration in an
// analyzed package gets a FuncSummary of the effects centurylint cares
// about; an Index aggregates summaries across every package the driver
// loads and closes them transitively over the call graph, so an
// analyzer inspecting a call site in package a can see that the callee
// three packages away fsyncs a file or loops forever.
//
// Summaries are keyed by qualified name ("pkg/path.Func" or
// "pkg/path.(Type).Method"), which is exactly what the loader's export
// data identifies, so the index works across any set of packages loaded
// in one run. Calls through interfaces or function values resolve to no
// summary and contribute nothing — the suite stays conservative in the
// no-false-positive direction at dynamic dispatch, and the analyzers
// that need a hard guarantee (lockedio's WAL contract) keep their
// package-local precision unchanged.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"centuryscale/internal/lint/typeutil"
)

// ioFuncs maps package path → package-level functions that block on
// I/O. A nil set means every function in the package.
var ioFuncs = map[string]map[string]bool{
	"net":      nil,
	"net/http": nil,
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
		"WriteFile": true, "ReadFile": true, "ReadDir": true,
		"Mkdir": true, "MkdirAll": true, "Remove": true, "RemoveAll": true,
		"Rename": true, "Truncate": true,
	},
	"encoding/json": {"Marshal": true, "MarshalIndent": true},
	"io":            {"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true},
}

// ioMethods maps receiver (pkg, type) → methods that block on I/O.
// A nil set means every method.
var ioMethods = map[[2]string]map[string]bool{
	{"os", "File"}: {
		"Write": true, "WriteString": true, "WriteAt": true, "ReadFrom": true,
		"Read": true, "ReadAt": true, "Sync": true, "Truncate": true, "Close": true,
	},
	{"encoding/json", "Encoder"}: {"Encode": true},
	{"encoding/json", "Decoder"}: {"Decode": true},
	{"bufio", "Writer"}:          {"Flush": true, "ReadFrom": true},
}

// DirectIO returns a human-readable name for the blocking I/O fn
// performs itself, or "".
func DirectIO(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	named := typeutil.ReceiverNamed(fn)
	path := typeutil.PkgPath(fn)
	// Package-level functions, plus every function and method of the
	// all-blocking packages (net, net/http — including their interface
	// methods, whose object also carries the package).
	if names, ok := ioFuncs[path]; ok && (names == nil || (named == nil && names[fn.Name()])) {
		if named != nil {
			return path + "." + named.Obj().Name() + "." + fn.Name()
		}
		return path + "." + fn.Name()
	}
	if named != nil {
		key := [2]string{typeutil.PkgPath(named.Obj()), named.Obj().Name()}
		if names, ok := ioMethods[key]; ok && (names == nil || names[fn.Name()]) {
			return key[0] + "." + key[1] + "." + fn.Name()
		}
	}
	return ""
}

// Name returns the qualified summary key for fn: "pkg/path.Func" for a
// package-level function, "pkg/path.(Recv).Method" for a method
// (pointerness ignored). Empty for builtins and error.Error-style
// objects with no package.
func Name(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if named := typeutil.ReceiverNamed(fn); named != nil {
		return fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// A FuncSummary records the effects of one function body that
// centurylint's flow analyzers consume. After Index.Resolve, the
// effect fields are transitive over the static call graph.
type FuncSummary struct {
	// Name is the qualified key ("" for function literals summarized at
	// their use site).
	Name string

	// IO names the first blocking I/O this function reaches ("" if
	// none). Synchronous code only: nested literals, defers, and go
	// statements do not run under the caller's locks.
	IO string

	// Blocking reports that the body cannot reach its own CFG exit: no
	// path from entry escapes its loops via break, return, or goto. A
	// decode loop with a break is not Blocking; `for { work() }` is.
	Blocking bool

	// Stops reports that the body can observe a shutdown signal: it
	// references a context.Context, receives from a struct{} channel,
	// or calls (*sync.WaitGroup).Done. Nested literals count — a
	// watcher goroutine holding the ctx still ties the lifetime.
	Stops bool

	// HasCtxParam reports a context.Context in the signature.
	HasCtxParam bool

	// CallsBackground reports a direct call to context.Background or
	// context.TODO in the synchronous body.
	CallsBackground bool

	// Calls lists qualified names of statically-resolved callees in the
	// synchronous body, for transitive closure.
	Calls []string

	// Acquires lists every lock acquisition with a stable root in the
	// synchronous body, in source order (see locks.go).
	Acquires []Acquire

	// CallsUnder lists every statically-resolved call made while at
	// least one lock root is held.
	CallsUnder []CallUnder

	// CallsWGDone / CallsWGWait report (*sync.WaitGroup).Done / .Wait
	// calls anywhere in the body, nested literals included: join
	// evidence for the lifecycle analyzer. After Resolve, transitive.
	CallsWGDone bool
	CallsWGWait bool

	// ClosesChans, SendsChans, and ReceivesChans list the canonical
	// roots (ExprRoot) of channels the body closes, sends on, and
	// receives from, nested literals included. A goroutine body that
	// closes a root some shutdown path receives from has a join path.
	// After Resolve, transitive.
	ClosesChans   []string
	SendsChans    []string
	ReceivesChans []string

	// Allocs lists the syntactically-decidable heap-allocation sites of
	// the synchronous body, in source order (see allocs.go). Sites on
	// cold (early-terminating) branches are excluded at collection.
	Allocs []AllocSite

	// AllocCalls lists statically-resolved calls with the loop context
	// the allocation fixpoint needs. Unlike Calls, multiplicity is
	// preserved and cold-branch calls are dropped.
	AllocCalls []AllocCall
}

// addRoot appends root to *set if non-empty and not already present.
func addRoot(set *[]string, root string) {
	if root == "" {
		return
	}
	for _, r := range *set {
		if r == root {
			return
		}
	}
	*set = append(*set, root)
}

// summarizeBody computes a FuncSummary for one body. sig may be nil
// (literals summarize their own FuncType separately).
func summarizeBody(info *types.Info, body *ast.BlockStmt) *FuncSummary {
	s := &FuncSummary{}
	seenCall := make(map[string]bool)

	// Blocking is a control-flow fact, not a syntactic one: build the
	// body's CFG and ask whether the exit is reachable. This is what
	// lets a `for { ... break }` decode loop stay non-blocking while
	// `for { work() }` is caught.
	s.Blocking = !reachesExit(NewCFG(body))

	// Pass 1 — synchronous effects: skip nested literals entirely.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			callee := typeutil.Callee(info, n)
			if callee == nil {
				return true
			}
			if typeutil.PkgPath(callee) == "context" && (callee.Name() == "Background" || callee.Name() == "TODO") {
				s.CallsBackground = true
			}
			if io := DirectIO(callee); io != "" && s.IO == "" {
				s.IO = io
			}
			if name := Name(callee); name != "" && !seenCall[name] {
				seenCall[name] = true
				s.Calls = append(s.Calls, name)
			}
		}
		return true
	})

	// Pass 2 — lifetime signals: nested literals included, because a
	// spawned watcher that closes over ctx still stops the whole body.
	// Channel and WaitGroup effects ride along here for the same reason:
	// the close that joins a goroutine is often deferred inside it.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContext(obj.Type()) {
				s.Stops = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if isStopChan(info.TypeOf(n.X)) {
					s.Stops = true
				}
				addRoot(&s.ReceivesChans, ExprRoot(info, n.X))
			}
		case *ast.SendStmt:
			addRoot(&s.SendsChans, ExprRoot(info, n.Chan))
		case *ast.RangeStmt:
			if _, isChan := info.TypeOf(n.X).Underlying().(*types.Chan); isChan {
				addRoot(&s.ReceivesChans, ExprRoot(info, n.X))
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" {
					addRoot(&s.ClosesChans, ExprRoot(info, n.Args[0]))
				}
			}
			if callee := typeutil.Callee(info, n); callee != nil {
				if callee.Name() == "Done" && typeutil.IsMethodOf(callee, "sync", "WaitGroup") {
					s.Stops = true
					s.CallsWGDone = true
				}
				if callee.Name() == "Wait" && typeutil.IsMethodOf(callee, "sync", "WaitGroup") {
					s.CallsWGWait = true
				}
			}
		}
		return true
	})

	// Pass 3 — lock effects: a held-set walk of the statement tree (see
	// locks.go).
	walkLocks(info, s, body)

	// Pass 4 — allocation sites: a loop/cold-context walk of the
	// statement tree (see allocs.go).
	walkAllocs(info, s, body)
	return s
}

// reachesExit reports whether any path from the CFG entry reaches the
// synthetic exit block.
func reachesExit(c *CFG) bool {
	seen := make([]bool, len(c.Blocks))
	stack := []*Block{c.Blocks[0]}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == c.Exit {
			return true
		}
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// SummarizeLit summarizes a function literal at its use site (the
// goroleak path). The literal's own parameters count toward ctx/stop
// detection exactly like a declaration's would.
func SummarizeLit(info *types.Info, lit *ast.FuncLit) *FuncSummary {
	s := summarizeBody(info, lit.Body)
	if tv, ok := info.Types[lit]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			s.HasCtxParam = sigHasContext(sig)
		}
	}
	return s
}

// Summarize builds summaries for every function declaration in the
// files of one type-checked package.
func Summarize(info *types.Info, files []*ast.File) map[string]*FuncSummary {
	out := make(map[string]*FuncSummary)
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			name := Name(fn)
			if name == "" {
				continue
			}
			s := summarizeBody(info, fd.Body)
			s.Name = name
			if sig, ok := fn.Type().(*types.Signature); ok {
				s.HasCtxParam = sigHasContext(sig)
			}
			out[name] = s
		}
	}
	return out
}

func sigHasContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && typeutil.PkgPath(obj) == "context"
}

// isStopChan reports whether t is a receivable channel of struct{} —
// the conventional stop/done signal.
func isStopChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// An Index aggregates function summaries across packages and resolves
// transitive effects over the call graph.
type Index struct {
	funcs map[string]*FuncSummary
	// locks maps function name → transitive set of lock roots it
	// acquires, built by Resolve.
	locks map[string]map[string]bool
	// allocs maps function name → transitive allocation effect, built
	// by Resolve (see allocs.go).
	allocs map[string]*AllocEffect
}

// NewIndex returns an empty summary index.
func NewIndex() *Index {
	return &Index{funcs: make(map[string]*FuncSummary)}
}

// Add merges one package's summaries into the index. Call Resolve after
// the last Add.
func (ix *Index) Add(sums map[string]*FuncSummary) {
	for name, s := range sums {
		ix.funcs[name] = s
	}
}

// Resolve closes IO, Blocking, Stops, the WaitGroup/channel join
// evidence, and the lock-acquisition sets transitively over Calls. Safe
// to call more than once; later Adds require a fresh Resolve.
func (ix *Index) Resolve() {
	for changed := true; changed; {
		changed = false
		for _, s := range ix.funcs {
			for _, callee := range s.Calls {
				t := ix.funcs[callee]
				if t == nil {
					continue
				}
				if s.IO == "" && t.IO != "" {
					s.IO = t.IO
					changed = true
				}
				if t.Blocking && !s.Blocking {
					s.Blocking = true
					changed = true
				}
				if t.Stops && !s.Stops {
					s.Stops = true
					changed = true
				}
				if t.CallsWGDone && !s.CallsWGDone {
					s.CallsWGDone = true
					changed = true
				}
				if t.CallsWGWait && !s.CallsWGWait {
					s.CallsWGWait = true
					changed = true
				}
				changed = mergeRoots(&s.ClosesChans, t.ClosesChans) || changed
				changed = mergeRoots(&s.SendsChans, t.SendsChans) || changed
				changed = mergeRoots(&s.ReceivesChans, t.ReceivesChans) || changed
			}
		}
	}

	// Transitive lock sets: the roots a function acquires itself or
	// through any statically-resolved callee. Computed after the effect
	// fixpoint so lockorder's call-under-lock edges see the full set.
	ix.locks = make(map[string]map[string]bool, len(ix.funcs))
	for name, s := range ix.funcs {
		set := make(map[string]bool)
		for _, a := range s.Acquires {
			set[a.Root] = true
		}
		ix.locks[name] = set
	}
	for changed := true; changed; {
		changed = false
		for name, s := range ix.funcs {
			set := ix.locks[name]
			for _, callee := range s.Calls {
				for root := range ix.locks[callee] {
					if !set[root] {
						set[root] = true
						changed = true
					}
				}
			}
		}
	}

	// Transitive allocation effects. Each pass recomputes every
	// function's effect from scratch (direct sites + current callee
	// effects) rather than merging in place: the counts are additive,
	// and incremental merging would double-charge on reiteration. The
	// recomputation is monotone — callee effects only grow, and
	// satAdd caps them — so the fixpoint terminates even on recursive
	// call graphs.
	ix.allocs = make(map[string]*AllocEffect, len(ix.funcs))
	for name := range ix.funcs {
		ix.allocs[name] = &AllocEffect{}
	}
	for changed := true; changed; {
		changed = false
		for name, s := range ix.funcs {
			e := directAllocEffect(s)
			for _, c := range s.AllocCalls {
				t := ix.allocs[c.Callee]
				if t == nil {
					continue
				}
				if c.InLoop && (t.Always > 0 || t.Unbounded) {
					// An always-allocating callee invoked every
					// iteration of an unbounded loop: no finite
					// budget covers it.
					e.Unbounded = true
				}
				if !c.InLoop {
					e.Always = satAdd(e.Always, t.Always)
				}
				e.Amortized = satAdd(e.Amortized, t.Amortized)
				e.Unbounded = e.Unbounded || t.Unbounded
			}
			if cur := ix.allocs[name]; *cur != e {
				*cur = e
				changed = true
			}
		}
	}
}

// mergeRoots unions src into *dst, reporting whether anything was added.
func mergeRoots(dst *[]string, src []string) bool {
	added := false
	for _, r := range src {
		n := len(*dst)
		addRoot(dst, r)
		if len(*dst) != n {
			added = true
		}
	}
	return added
}

// Lookup returns the (resolved) summary for a qualified name, or nil
// when the function was not in any loaded package.
func (ix *Index) Lookup(name string) *FuncSummary {
	if ix == nil {
		return nil
	}
	return ix.funcs[name]
}

// ReachesIO returns the blocking I/O the named function transitively
// reaches, or "".
func (ix *Index) ReachesIO(name string) string {
	if s := ix.Lookup(name); s != nil {
		return s.IO
	}
	return ""
}

// BlockingOf evaluates a (possibly literal, unindexed) summary against
// the index: does the body loop forever, directly or through a callee?
func (ix *Index) BlockingOf(s *FuncSummary) bool {
	if s == nil {
		return false
	}
	if s.Blocking {
		return true
	}
	for _, c := range s.Calls {
		if t := ix.Lookup(c); t != nil && t.Blocking {
			return true
		}
	}
	return false
}

// StopsOf evaluates a summary against the index: can the body observe a
// stop signal, directly or through a callee?
func (ix *Index) StopsOf(s *FuncSummary) bool {
	if s == nil {
		return false
	}
	if s.Stops || s.HasCtxParam {
		return true
	}
	for _, c := range s.Calls {
		if t := ix.Lookup(c); t != nil && (t.Stops || t.HasCtxParam) {
			return true
		}
	}
	return false
}

// Names returns every indexed function name in sorted order, for
// deterministic whole-program iteration.
func (ix *Index) Names() []string {
	if ix == nil {
		return nil
	}
	names := make([]string, 0, len(ix.funcs))
	for name := range ix.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// TransitiveLocks returns the sorted set of lock roots the named
// function acquires, directly or through any statically-resolved
// callee. Valid after Resolve.
func (ix *Index) TransitiveLocks(name string) []string {
	if ix == nil || ix.locks == nil {
		return nil
	}
	set := ix.locks[name]
	if len(set) == 0 {
		return nil
	}
	roots := make([]string, 0, len(set))
	for r := range set {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	return roots
}

// AcquireChain returns a shortest call chain (function names, starting
// at from) ending at a function that directly acquires root, or nil.
// BFS over Calls with sorted expansion keeps the witness deterministic.
func (ix *Index) AcquireChain(from, root string) []string {
	if ix == nil {
		return nil
	}
	type node struct {
		name string
		path []string
	}
	seen := map[string]bool{from: true}
	queue := []node{{from, []string{from}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		s := ix.funcs[n.name]
		if s == nil {
			continue
		}
		for _, a := range s.Acquires {
			if a.Root == root {
				return n.path
			}
		}
		callees := append([]string(nil), s.Calls...)
		sort.Strings(callees)
		for _, c := range callees {
			if seen[c] || ix.locks[c] == nil || !ix.locks[c][root] {
				continue
			}
			seen[c] = true
			queue = append(queue, node{c, append(append([]string(nil), n.path...), c)})
		}
	}
	return nil
}
