package dataflow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"
)

// summarizePkg typechecks a whole file and returns the summaries keyed
// by qualified name ("p.f", "p.(T).m").
func summarizePkg(t *testing.T, src string) map[string]*FuncSummary {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Summarize(info, []*ast.File{file})
}

// acquireString renders one Acquire compactly for golden comparison:
// "root [held...]" with loop flags appended.
func acquireString(a Acquire) string {
	s := fmt.Sprintf("%s %v", a.Root, a.Held)
	if a.Looped {
		s += " looped"
	}
	if a.IndexOrdered {
		s += " ordered"
	}
	return s
}

func acquireStrings(s *FuncSummary) []string {
	var out []string
	for _, a := range s.Acquires {
		out = append(out, acquireString(a))
	}
	return out
}

func TestLockEffects(t *testing.T) {
	const prelude = `package p

import "sync"

var gmu sync.Mutex

type T struct {
	mu sync.Mutex
	n  int
}

type Shard struct {
	mu sync.Mutex
}

type S struct {
	shards []*Shard
}

func work() {}
`
	tests := []struct {
		name string
		src  string
		fn   string
		want []string
	}{
		{
			name: "nested-acquire-records-held",
			src: `func (t *T) f() {
	gmu.Lock()
	t.mu.Lock()
	t.mu.Unlock()
	gmu.Unlock()
}`,
			fn:   "p.(T).f",
			want: []string{"p.gmu []", "p.(T).mu [p.gmu]"},
		},
		{
			name: "defer-unlock-holds-to-end",
			src: `func (t *T) f() {
	gmu.Lock()
	defer gmu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}`,
			fn:   "p.(T).f",
			want: []string{"p.gmu []", "p.(T).mu [p.gmu]"},
		},
		{
			name: "branch-lock-does-not-leak",
			src: `func (t *T) f(c bool) {
	if c {
		gmu.Lock()
		gmu.Unlock()
	}
	t.mu.Lock()
	t.mu.Unlock()
}`,
			fn:   "p.(T).f",
			want: []string{"p.gmu []", "p.(T).mu []"},
		},
		{
			// The FoldRollups barrier: lock+unlock per iteration nets to
			// zero held, so nothing is Looped and nothing accumulates.
			name: "barrier-loop-not-looped",
			src: `func (s *S) f() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.mu.Unlock()
	}
	work()
}`,
			fn:   "p.(S).f",
			want: []string{"p.(Shard).mu []"},
		},
		{
			// Grab-all in slice order: accumulates (Looped) but the range
			// fixes the order (IndexOrdered) — the safe hierarchy idiom.
			name: "accumulate-range-slice-ordered",
			src: `func (s *S) f() {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}`,
			fn:   "p.(S).f",
			want: []string{"p.(Shard).mu [] looped ordered"},
		},
		{
			name: "accumulate-counter-index-ordered",
			src: `func (s *S) f() {
	for i := 0; i < len(s.shards); i++ {
		s.shards[i].mu.Lock()
	}
	for i := 0; i < len(s.shards); i++ {
		s.shards[i].mu.Unlock()
	}
}`,
			fn:   "p.(S).f",
			want: []string{"p.(Shard).mu [] looped ordered"},
		},
		{
			// Ranging a map gives no order: accumulation without a
			// hierarchy, the self-deadlock lockorder flags.
			name: "accumulate-map-range-unordered",
			src: `func f(m map[string]*Shard) {
	for _, sh := range m {
		sh.mu.Lock()
	}
}`,
			fn:   "p.f",
			want: []string{"p.(Shard).mu [] looped"},
		},
		{
			// Locks accumulated by a loop are held by the statements after
			// it: the second family acquires under the first.
			name: "post-loop-still-held",
			src: `func (s *S) f(t *T) {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	t.mu.Lock()
	t.mu.Unlock()
}`,
			fn:   "p.(S).f",
			want: []string{"p.(Shard).mu [] looped ordered", "p.(T).mu [p.(Shard).mu]"},
		},
		{
			// The Uplink drain shape: lock at the top of the iteration,
			// release inside every switch arm. The net count sees the
			// branch-nested unlocks; nothing accumulates.
			name: "switch-arm-release-not-looped",
			src: `func (t *T) f(xs []int) {
	for _, x := range xs {
		t.mu.Lock()
		switch {
		case x > 0:
			t.mu.Unlock()
		default:
			t.mu.Unlock()
		}
	}
}`,
			fn:   "p.(T).f",
			want: []string{"p.(T).mu []"},
		},
		{
			// defer runs at function end, not per iteration: the deferred
			// unlock is NOT a release, so the loop accumulates — exactly
			// the hold-all-until-return pattern.
			name: "defer-unlock-in-loop-accumulates",
			src: `func (s *S) f() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	work()
}`,
			fn:   "p.(S).f",
			want: []string{"p.(Shard).mu [] looped ordered"},
		},
		{
			name: "local-mutex-untracked",
			src: `func f() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}`,
			fn:   "p.f",
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sums := summarizePkg(t, prelude+tt.src)
			s := sums[tt.fn]
			if s == nil {
				t.Fatalf("no summary for %s (have %v)", tt.fn, keys(sums))
			}
			got := acquireStrings(s)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("acquires = %v, want %v", got, tt.want)
			}
		})
	}
}

func keys(m map[string]*FuncSummary) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestCallsUnderLock(t *testing.T) {
	src := `package p

import "sync"

type T struct{ mu sync.Mutex }

func work() {}

func free() { work() }

func (t *T) f() {
	t.mu.Lock()
	work()
	t.mu.Unlock()
	free()
}`
	sums := summarizePkg(t, src)
	s := sums["p.(T).f"]
	if s == nil {
		t.Fatal("no summary for p.(T).f")
	}
	if len(s.CallsUnder) != 1 {
		t.Fatalf("CallsUnder = %+v, want exactly the locked work() call", s.CallsUnder)
	}
	cu := s.CallsUnder[0]
	if cu.Callee != "p.work" || !reflect.DeepEqual(cu.Held, []string{"p.(T).mu"}) {
		t.Errorf("CallsUnder[0] = %+v, want p.work under [p.(T).mu]", cu)
	}
}

// TestTransitiveLocksAndChain exercises the whole-index view lockorder
// consumes: transitive lock sets over the call graph and the shortest
// acquisition chain used in diagnostics.
func TestTransitiveLocksAndChain(t *testing.T) {
	src := `package p

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func (b *B) deep() {
	b.mu.Lock()
	b.mu.Unlock()
}

func middle(b *B) { b.deep() }

func (a *A) top(b *B) {
	a.mu.Lock()
	middle(b)
	a.mu.Unlock()
}`
	ix := NewIndex()
	ix.Add(summarizePkg(t, src))
	ix.Resolve()

	got := ix.TransitiveLocks("p.(A).top")
	want := []string{"p.(A).mu", "p.(B).mu"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TransitiveLocks(top) = %v, want %v", got, want)
	}

	chain := ix.AcquireChain("p.(A).top", "p.(B).mu")
	wantChain := []string{"p.(A).top", "p.middle", "p.(B).deep"}
	if !reflect.DeepEqual(chain, wantChain) {
		t.Errorf("AcquireChain = %v, want %v", chain, wantChain)
	}
}

func TestChanAndWGEffects(t *testing.T) {
	src := `package p

import "sync"

type D struct {
	done chan struct{}
	wg   sync.WaitGroup
}

func (d *D) loop() {
	defer close(d.done)
	for range d.done {
	}
}

func (d *D) worker() {
	defer d.wg.Done()
}

func (d *D) shutdown(local chan int) {
	local <- 1
	<-d.done
	d.wg.Wait()
}`
	sums := summarizePkg(t, src)

	loop := sums["p.(D).loop"]
	if !reflect.DeepEqual(loop.ClosesChans, []string{"p.(D).done"}) {
		t.Errorf("loop.ClosesChans = %v, want [p.(D).done]", loop.ClosesChans)
	}
	if !reflect.DeepEqual(loop.ReceivesChans, []string{"p.(D).done"}) {
		t.Errorf("loop.ReceivesChans = %v, want [p.(D).done]", loop.ReceivesChans)
	}

	worker := sums["p.(D).worker"]
	if !worker.CallsWGDone || worker.CallsWGWait {
		t.Errorf("worker Done/Wait = %v/%v, want true/false", worker.CallsWGDone, worker.CallsWGWait)
	}

	shutdown := sums["p.(D).shutdown"]
	if !shutdown.CallsWGWait {
		t.Error("shutdown.CallsWGWait = false, want true")
	}
	if !reflect.DeepEqual(shutdown.ReceivesChans, []string{"p.(D).done"}) {
		t.Errorf("shutdown.ReceivesChans = %v, want [p.(D).done]", shutdown.ReceivesChans)
	}
	// The local channel has no stable root and must not pollute the set.
	if len(shutdown.SendsChans) != 0 {
		t.Errorf("shutdown.SendsChans = %v, want empty", shutdown.SendsChans)
	}
}

// TestExprRoot pins the canonicalization rules directly.
func TestExprRoot(t *testing.T) {
	src := `package p

import "sync"

var gmu sync.Mutex

type Shard struct{ mu sync.Mutex }
type S struct{ shards []*Shard }

func (s *S) f(i int) {
	gmu.Lock()
	s.shards[i].mu.Lock()
	var local sync.Mutex
	local.Lock()
	_ = local
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var got []string
	ast.Inspect(file, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if recv, op, ok := LockOp(info, call); ok && op == "Lock" {
			got = append(got, ExprRoot(info, recv))
		}
		return true
	})
	want := []string{"p.gmu", "p.(Shard).mu", ""}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("roots = %v, want %v", got, want)
	}
}

// Guard against the golden format drifting silently: the rendering used
// above is itself part of the contract these tests pin.
func TestAcquireStringFormat(t *testing.T) {
	a := Acquire{Root: "p.x", Held: []string{"p.y"}, Looped: true, IndexOrdered: true}
	if s := acquireString(a); !strings.Contains(s, "p.x") || !strings.Contains(s, "looped") {
		t.Errorf("acquireString = %q", s)
	}
}
