// Cross-package fixture: the lock is held here in package a, the
// blocking write happens in package b. v2's shared summary index must
// carry the I/O fact across the boundary.
package a

import (
	"sync"

	"crosspkg/b"
)

type Store struct {
	mu  sync.Mutex
	wal *b.WAL
}

// Ingest holds the store mutex across b's WAL append, which fsyncs.
func (s *Store) Ingest(rec []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal.Append(rec) // want `call to crosspkg/b\.\(WAL\)\.Append reaches blocking I/O \(os\.File\.Write\) while "s\.mu" is held`
}

// Stage only touches memory under the lock and appends after release.
func (s *Store) Stage(rec []byte) {
	s.mu.Lock()
	staged := append([]byte(nil), rec...)
	s.mu.Unlock()
	s.wal.Append(staged)
}

// Deep reaches b's I/O through a b-internal helper: the index closes
// over b's own call graph too.
func (s *Store) Deep(rec []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b.Checkpoint(s.wal, rec) // want `call to crosspkg/b\.Checkpoint reaches blocking I/O \(os\.File\.Write\) while "s\.mu" is held`
}
