// Package b is the I/O sink side of the cross-package lockedio fixture.
package b

import "os"

type WAL struct {
	f *os.File
}

// Append writes and fsyncs: direct blocking I/O.
func (w *WAL) Append(rec []byte) {
	_, _ = w.f.Write(rec)
	_ = w.f.Sync()
}

// Checkpoint reaches the I/O one helper deep inside b.
func Checkpoint(w *WAL, rec []byte) {
	flush(w, rec)
}

func flush(w *WAL, rec []byte) {
	w.Append(rec)
}
