// Fixture for lockedio: blocking I/O under mutexes in every shape the
// analyzer must catch — direct syscalls, bulk JSON, net calls, I/O
// reached through a same-package helper — plus the shapes it must not
// flag: I/O after Unlock, I/O in a spawned goroutine, and annotated
// intentional sites.
package locked

import (
	"encoding/json"
	"net"
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	f  *os.File
}

func (s *store) flushUnderLock() {
	s.mu.Lock()
	s.f.Sync() // want `os\.File\.Sync while "s\.mu" is held`
	s.mu.Unlock()
	s.f.Sync() // lock released: fine
}

func (s *store) encodeUnderDeferredUnlock(enc *json.Encoder, v map[string]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc.Encode(v) // want `encoding/json\.Encoder\.Encode while "s\.mu" is held`
}

func (s *store) marshalInBranch(v map[string]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v != nil {
		_, _ = json.Marshal(v) // want `encoding/json\.Marshal while "s\.mu" is held`
	}
}

// helper is clean in isolation; it only becomes a finding at a locked
// call site.
func (s *store) helper() { _ = s.f.Sync() }

func (s *store) transitive() {
	s.mu.Lock()
	s.helper() // want `call to helper reaches blocking I/O \(os\.File\.Sync\) while "s\.mu" is held`
	s.mu.Unlock()
}

func (s *store) dialUnderReadLock() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_, _ = net.Dial("tcp", "localhost:1") // want `net\.Dial while "s\.rw" is held`
}

func (s *store) annotatedWALContract() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:lockedio WAL-before-ack ordering: the write must serialize with the insert
	_ = s.f.Sync()
}

func (s *store) goroutineDoesNotHoldTheLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { _ = s.f.Sync() }() // runs outside this critical section
}

func (s *store) branchUnlockDoesNotLeak(ready bool) {
	s.mu.Lock()
	if !ready {
		s.mu.Unlock()
		_ = s.f.Sync() // this path released the lock: fine
		return
	}
	s.mu.Unlock()
}
