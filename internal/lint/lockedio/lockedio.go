// Package lockedio implements the centurylint analyzer that finds
// blocking I/O performed while a sync.Mutex or sync.RWMutex is held.
//
// This is the exact shape of the PR 2 snapshot-stall bug: the endpoint
// encoded a multi-hundred-megabyte JSON snapshot while holding the store
// mutex, so ingest latency spiked from microseconds to seconds whenever a
// checkpoint ran. The general rule: a critical section should cover
// memory, not devices. File writes, fsyncs, network calls, and bulk JSON
// (en|de)coding under a hot lock turn one slow syscall into a stall for
// every competing goroutine.
//
// Detection is per function body. A locked region opens at a
// `mu.Lock()`/`mu.RLock()` statement and closes at the matching
// `mu.Unlock()`/`mu.RUnlock()` in the same block (a deferred unlock holds
// to the end of the function). Inside a region, lockedio flags calls that
// perform blocking I/O directly, and calls to same-package functions that
// transitively reach blocking I/O (so hiding an fsync one helper deep —
// shard → wal — still reports at the locked call site). Function literal
// bodies, `go` statements, and deferred calls are not scanned: they do
// not run synchronously under the lock at that point.
//
// Some critical sections hold a lock across I/O on purpose — the WAL
// append must serialize the write with the memtable insert or the
// durability ordering contract breaks. Those sites annotate
// `//lint:lockedio <reason>`, turning an invisible design decision into a
// reviewable line.
package lockedio

import (
	"go/ast"
	"go/types"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name:      "lockedio",
	Directive: "lockedio",
	Doc: "flag blocking I/O (file writes/fsyncs, net and net/http calls, bulk " +
		"JSON encode/decode) performed while a sync.Mutex or RWMutex is held " +
		"(snapshot-stall class), including I/O reached through same-package helpers",
	Run: run,
}

// ioFuncs maps package path → function/method names that block on I/O.
// A nil set means every function in the package.
var ioFuncs = map[string]map[string]bool{
	"net":      nil,
	"net/http": nil,
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
		"WriteFile": true, "ReadFile": true, "ReadDir": true,
		"Mkdir": true, "MkdirAll": true, "Remove": true, "RemoveAll": true,
		"Rename": true, "Truncate": true,
	},
	"encoding/json": {"Marshal": true, "MarshalIndent": true},
	"io":            {"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true},
}

// ioMethods maps receiver (pkg, type) → method names that block on I/O.
// A nil set means every method.
var ioMethods = map[[2]string]map[string]bool{
	{"os", "File"}: {
		"Write": true, "WriteString": true, "WriteAt": true, "ReadFrom": true,
		"Read": true, "ReadAt": true, "Sync": true, "Truncate": true, "Close": true,
	},
	{"encoding/json", "Encoder"}: {"Encode": true},
	{"encoding/json", "Decoder"}: {"Decode": true},
	{"bufio", "Writer"}:          {"Flush": true, "ReadFrom": true},
}

func run(pass *analysis.Pass) error {
	reach := buildReachability(pass)
	for _, file := range pass.Files {
		// Every function body — declarations and literals, however deeply
		// nested — is scanned independently; scanBlock itself never
		// descends into a FuncLit, so no statement is scanned twice.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanBlock(pass, reach, fn.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				scanBlock(pass, reach, fn.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// directIO returns a human-readable name for the blocking I/O fn performs,
// or "".
func directIO(fn *types.Func) string {
	named := typeutil.ReceiverNamed(fn)
	path := typeutil.PkgPath(fn)
	// Package-level functions, plus every function and method of the
	// all-blocking packages (net, net/http — including their interface
	// methods, whose object also carries the package).
	if names, ok := ioFuncs[path]; ok && (names == nil || (named == nil && names[fn.Name()])) {
		if named != nil {
			return path + "." + named.Obj().Name() + "." + fn.Name()
		}
		return path + "." + fn.Name()
	}
	if named != nil {
		key := [2]string{typeutil.PkgPath(named.Obj()), named.Obj().Name()}
		if names, ok := ioMethods[key]; ok && (names == nil || names[fn.Name()]) {
			return key[0] + "." + key[1] + "." + fn.Name()
		}
	}
	return ""
}

// buildReachability computes, for every function declared in this
// package, the first blocking I/O call it can reach through same-package
// calls (direct I/O short-circuits). The map value is the description of
// the underlying I/O.
func buildReachability(pass *analysis.Pass) map[*types.Func]string {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	reach := make(map[*types.Func]string)
	calls := make(map[*types.Func][]*types.Func)
	for obj, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := typeutil.Callee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if io := directIO(callee); io != "" && reach[obj] == "" {
				reach[obj] = io
			}
			if _, local := decls[callee]; local {
				calls[obj] = append(calls[obj], callee)
			}
			return true
		})
	}
	// Propagate to a fixpoint: a caller reaches I/O if any same-package
	// callee does.
	for changed := true; changed; {
		changed = false
		for obj := range decls {
			if reach[obj] != "" {
				continue
			}
			for _, callee := range calls[obj] {
				if io := reach[callee]; io != "" {
					reach[obj] = io
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// scanBlock walks one statement list tracking which mutexes are held.
// Nested control flow is scanned with a copy of the held set, so a
// branch-local Lock or Unlock never leaks into the enclosing block.
func scanBlock(pass *analysis.Pass, reach map[*types.Func]string, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := lockOp(pass, s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				continue
			}
			inspectForIO(pass, reach, s, held)
		case *ast.DeferStmt:
			// A deferred Unlock keeps the region open to function end;
			// other deferred calls run after the section closes. Either
			// way the statement itself is not I/O under the lock.
		case *ast.GoStmt:
			// The spawned goroutine does not hold this goroutine's locks.
		case *ast.BlockStmt:
			scanBlock(pass, reach, s.List, clone(held))
		case *ast.IfStmt:
			inspectForIO(pass, reach, s.Init, held)
			inspectForIO(pass, reach, s.Cond, held)
			scanBlock(pass, reach, s.Body.List, clone(held))
			if s.Else != nil {
				scanBlock(pass, reach, []ast.Stmt{s.Else}, clone(held))
			}
		case *ast.ForStmt:
			inspectForIO(pass, reach, s.Init, held)
			inspectForIO(pass, reach, s.Cond, held)
			inspectForIO(pass, reach, s.Post, held)
			scanBlock(pass, reach, s.Body.List, clone(held))
		case *ast.RangeStmt:
			inspectForIO(pass, reach, s.X, held)
			scanBlock(pass, reach, s.Body.List, clone(held))
		case *ast.SwitchStmt:
			inspectForIO(pass, reach, s.Init, held)
			inspectForIO(pass, reach, s.Tag, held)
			scanCases(pass, reach, s.Body, held)
		case *ast.TypeSwitchStmt:
			scanCases(pass, reach, s.Body, held)
		case *ast.SelectStmt:
			scanCases(pass, reach, s.Body, held)
		case *ast.LabeledStmt:
			scanBlock(pass, reach, []ast.Stmt{s.Stmt}, held)
		default:
			inspectForIO(pass, reach, stmt, held)
		}
	}
}

func scanCases(pass *analysis.Pass, reach map[*types.Func]string, body *ast.BlockStmt, held map[string]bool) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			scanBlock(pass, reach, cc.Body, clone(held))
		case *ast.CommClause:
			scanBlock(pass, reach, cc.Body, clone(held))
		}
	}
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// lockOp matches `<expr>.Lock()`-shaped calls on sync mutexes, returning
// the rendered receiver expression and the operation name.
func lockOp(pass *analysis.Pass, expr ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || typeutil.PkgPath(fn) != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// inspectForIO reports every blocking I/O call inside node while any
// mutex is held. Function literals are skipped: their bodies run when
// invoked, which scanBlock/run handle separately.
func inspectForIO(pass *analysis.Pass, reach map[*types.Func]string, node ast.Node, held map[string]bool) {
	if node == nil || len(held) == 0 {
		return
	}
	heldName := ""
	for k := range held {
		if heldName == "" || k < heldName {
			heldName = k
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := typeutil.Callee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if io := directIO(callee); io != "" {
			pass.Reportf(call.Pos(),
				"%s while %q is held blocks every goroutine contending for the lock (snapshot-stall class); move the I/O outside the critical section or annotate //lint:lockedio <reason>",
				io, heldName)
			return true
		}
		if io := reach[callee]; io != "" {
			pass.Reportf(call.Pos(),
				"call to %s reaches blocking I/O (%s) while %q is held (snapshot-stall class); move the I/O outside the critical section or annotate //lint:lockedio <reason>",
				callee.Name(), io, heldName)
		}
		return true
	})
}
