// Package lockedio implements the centurylint analyzer that finds
// blocking I/O performed while a sync.Mutex or sync.RWMutex is held.
//
// This is the exact shape of the PR 2 snapshot-stall bug: the endpoint
// encoded a multi-hundred-megabyte JSON snapshot while holding the store
// mutex, so ingest latency spiked from microseconds to seconds whenever a
// checkpoint ran. The general rule: a critical section should cover
// memory, not devices. File writes, fsyncs, network calls, and bulk JSON
// (en|de)coding under a hot lock turn one slow syscall into a stall for
// every competing goroutine.
//
// Detection is per function body. A locked region opens at a
// `mu.Lock()`/`mu.RLock()` statement and closes at the matching
// `mu.Unlock()`/`mu.RUnlock()` in the same block (a deferred unlock holds
// to the end of the function). Inside a region, lockedio flags calls that
// perform blocking I/O directly, and calls that transitively reach
// blocking I/O through the dataflow call summaries — since v2 across
// package boundaries, not just same-package helpers, so a store method
// that appends to another package's WAL while holding the store mutex
// reports at the locked call site three packages away from the fsync.
// Function literal bodies, `go` statements, and deferred calls are not
// scanned: they do not run synchronously under the lock at that point.
//
// Some critical sections hold a lock across I/O on purpose — the WAL
// append must serialize the write with the memtable insert or the
// durability ordering contract breaks. Those sites annotate
// `//lint:lockedio <reason>`, turning an invisible design decision into a
// reviewable line.
package lockedio

import (
	"go/ast"
	"go/types"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/dataflow"
	"centuryscale/internal/lint/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name:      "lockedio",
	Directive: "lockedio",
	Doc: "flag blocking I/O (file writes/fsyncs, net and net/http calls, bulk " +
		"JSON encode/decode) performed while a sync.Mutex or RWMutex is held " +
		"(snapshot-stall class), including I/O reached transitively through " +
		"helpers in any loaded package",
	Run: run,
}

func run(pass *analysis.Pass) error {
	index := pass.Summaries
	if index == nil {
		// No driver pre-pass: fall back to a package-local index, which
		// reproduces v1's same-package reachability exactly.
		index = dataflow.NewIndex()
		index.Add(dataflow.Summarize(pass.TypesInfo, pass.Files))
		index.Resolve()
	}
	for _, file := range pass.Files {
		// Every function body — declarations and literals, however deeply
		// nested — is scanned independently; scanBlock itself never
		// descends into a FuncLit, so no statement is scanned twice.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanBlock(pass, index, fn.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				scanBlock(pass, index, fn.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// scanBlock walks one statement list tracking which mutexes are held.
// Nested control flow is scanned with a copy of the held set, so a
// branch-local Lock or Unlock never leaks into the enclosing block.
func scanBlock(pass *analysis.Pass, index *dataflow.Index, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := lockOp(pass, s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				continue
			}
			inspectForIO(pass, index, s, held)
		case *ast.DeferStmt:
			// A deferred Unlock keeps the region open to function end;
			// other deferred calls run after the section closes. Either
			// way the statement itself is not I/O under the lock.
		case *ast.GoStmt:
			// The spawned goroutine does not hold this goroutine's locks.
		case *ast.BlockStmt:
			scanBlock(pass, index, s.List, clone(held))
		case *ast.IfStmt:
			inspectForIO(pass, index, s.Init, held)
			inspectForIO(pass, index, s.Cond, held)
			scanBlock(pass, index, s.Body.List, clone(held))
			if s.Else != nil {
				scanBlock(pass, index, []ast.Stmt{s.Else}, clone(held))
			}
		case *ast.ForStmt:
			inspectForIO(pass, index, s.Init, held)
			inspectForIO(pass, index, s.Cond, held)
			inspectForIO(pass, index, s.Post, held)
			scanBlock(pass, index, s.Body.List, clone(held))
		case *ast.RangeStmt:
			inspectForIO(pass, index, s.X, held)
			scanBlock(pass, index, s.Body.List, clone(held))
		case *ast.SwitchStmt:
			inspectForIO(pass, index, s.Init, held)
			inspectForIO(pass, index, s.Tag, held)
			scanCases(pass, index, s.Body, held)
		case *ast.TypeSwitchStmt:
			scanCases(pass, index, s.Body, held)
		case *ast.SelectStmt:
			scanCases(pass, index, s.Body, held)
		case *ast.LabeledStmt:
			scanBlock(pass, index, []ast.Stmt{s.Stmt}, held)
		default:
			inspectForIO(pass, index, stmt, held)
		}
	}
}

func scanCases(pass *analysis.Pass, index *dataflow.Index, body *ast.BlockStmt, held map[string]bool) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			scanBlock(pass, index, cc.Body, clone(held))
		case *ast.CommClause:
			scanBlock(pass, index, cc.Body, clone(held))
		}
	}
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// lockOp matches `<expr>.Lock()`-shaped calls on sync mutexes, returning
// the rendered receiver expression and the operation name.
func lockOp(pass *analysis.Pass, expr ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || typeutil.PkgPath(fn) != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// inspectForIO reports every blocking I/O call inside node while any
// mutex is held. Function literals are skipped: their bodies run when
// invoked, which scanBlock/run handle separately.
func inspectForIO(pass *analysis.Pass, index *dataflow.Index, node ast.Node, held map[string]bool) {
	if node == nil || len(held) == 0 {
		return
	}
	heldName := ""
	for k := range held {
		if heldName == "" || k < heldName {
			heldName = k
		}
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := typeutil.Callee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if io := dataflow.DirectIO(callee); io != "" {
			pass.Reportf(call.Pos(),
				"%s while %q is held blocks every goroutine contending for the lock (snapshot-stall class); move the I/O outside the critical section or annotate //lint:lockedio <reason>",
				io, heldName)
			return true
		}
		if io := index.ReachesIO(dataflow.Name(callee)); io != "" {
			// Same-package callees keep their bare name; a cross-package
			// callee is named in full so the reader can find the sink.
			name := callee.Name()
			if callee.Pkg() != pass.Pkg {
				name = dataflow.Name(callee)
			}
			pass.Reportf(call.Pos(),
				"call to %s reaches blocking I/O (%s) while %q is held (snapshot-stall class); move the I/O outside the critical section or annotate //lint:lockedio <reason>",
				name, io, heldName)
		}
		return true
	})
}
