package lockedio_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/lockedio"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", lockedio.Analyzer, "locked")
}
