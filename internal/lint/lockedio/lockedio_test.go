package lockedio_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/lockedio"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", lockedio.Analyzer, "locked")
}

// TestCrossPackage locks in package a and writes in package b: the v2
// summary index must carry the I/O fact across the package boundary.
func TestCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", lockedio.Analyzer, "crosspkg/a")
}
