// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface that centurylint's checkers
// need: an Analyzer descriptor, a per-package Pass carrying parsed files
// and full type information, and diagnostic reporting.
//
// The repository builds offline — no module proxy is reachable — so the
// real x/tools module cannot be pinned. This package deliberately mirrors
// its field and method names (Analyzer.Name/Doc/Run, Pass.Fset/Files/Pkg/
// TypesInfo, Pass.Reportf) so that migrating the checkers onto a pinned
// golang.org/x/tools is a mechanical import swap, not a rewrite. Features
// the checkers do not use (Requires, Facts, ResultOf) are omitted.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"centuryscale/internal/lint/dataflow"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// //lint:<name-specific-directive> suppression syntax (see Directive).
	Name string

	// Doc is the one-paragraph description printed by `centurylint -list`.
	Doc string

	// Directive is the suppression word recognised in //lint: comments for
	// this analyzer (e.g. "wallclock" for simdeterminism). A diagnostic
	// whose position is on, or directly below, a line carrying
	// //lint:<Directive> is dropped before it reaches the driver.
	Directive string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic that survives directive suppression.
	Report func(Diagnostic)

	// Summaries carries the cross-package call summaries the driver
	// computes in its pre-pass over every loaded package. Analyzers
	// that follow calls across package boundaries (lockedio, goroleak,
	// ctxflow) consult it; nil means "no interprocedural context" and
	// those analyzers fall back to package-local summaries.
	Summaries *dataflow.Index

	// Suppressions, when non-nil, records every //lint: directive line
	// that actually suppressed a diagnostic during this package's run.
	// The driver shares one log across the whole suite so waiveraudit
	// (which runs last) can flag stale waivers. Nil disables staleness
	// accounting — e.g. under -only, when the suppressed analyzer may
	// simply not have run.
	Suppressions *SuppressionLog

	// Directives maps every suppression word the assembled suite
	// recognises to its analyzer name (waiveraudit's ground truth for
	// "unknown directive"). Nil outside suite runs.
	Directives map[string]string

	// directiveLines caches, per file, the lines carrying this
	// analyzer's suppression directive.
	directiveLines map[*ast.File]directives
}

// A SuppressionLog records which //lint: directive lines earned their
// keep by suppressing at least one diagnostic.
type SuppressionLog struct {
	used map[suppKey]bool
}

type suppKey struct {
	file string
	line int
}

// NewSuppressionLog returns an empty log.
func NewSuppressionLog() *SuppressionLog {
	return &SuppressionLog{used: make(map[suppKey]bool)}
}

// Use marks the directive on file:line as having suppressed a finding.
func (l *SuppressionLog) Use(file string, line int) {
	l.used[suppKey{file, line}] = true
}

// Used reports whether the directive on file:line suppressed anything.
func (l *SuppressionLog) Used(file string, line int) bool {
	return l.used[suppKey{file, line}]
}

// A Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos unless a suppression
// directive covers that line. A suppressed diagnostic is recorded in
// the shared SuppressionLog (when present), which is how waiveraudit
// distinguishes a load-bearing waiver from a stale one.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if file, line, ok := p.suppressionSite(pos); ok {
		if p.Suppressions != nil {
			p.Suppressions.Use(file, line)
		}
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether pos sits on a line annotated with this
// analyzer's //lint: directive — either trailing the offending line or as
// a standalone comment on the line directly above it. A trailing
// directive waives only its own line: it must not bleed onto the next
// statement. The directive is an explicit, reviewable waiver: it exists
// so the daemon/network layer can keep its genuine wall-clock uses, and
// so intentionally-locked WAL I/O can state its contract at the call
// site.
func (p *Pass) Suppressed(pos token.Pos) bool {
	_, _, ok := p.suppressionSite(pos)
	return ok
}

// suppressionSite resolves the directive line (filename, line number)
// that waives a diagnostic at pos, if any.
func (p *Pass) suppressionSite(pos token.Pos) (string, int, bool) {
	if p.Analyzer == nil || p.Analyzer.Directive == "" || !pos.IsValid() {
		return "", 0, false
	}
	file := p.fileFor(pos)
	if file == nil {
		return "", 0, false
	}
	d := p.directivesIn(file)
	position := p.Fset.Position(pos)
	if d.any[position.Line] {
		return position.Filename, position.Line, true
	}
	if d.standalone[position.Line-1] {
		return position.Filename, position.Line - 1, true
	}
	return "", 0, false
}

func (p *Pass) fileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

type directives struct {
	any        map[int]bool // lines carrying the directive, trailing or not
	standalone map[int]bool // directive lines with no code on them
}

func (p *Pass) directivesIn(file *ast.File) directives {
	if d, ok := p.directiveLines[file]; ok {
		return d
	}
	want := "//lint:" + p.Analyzer.Directive
	d := directives{any: make(map[int]bool), standalone: make(map[int]bool)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !matchesDirective(c.Text, want) {
				continue
			}
			d.any[p.Fset.Position(c.Pos()).Line] = true
		}
	}
	if len(d.any) > 0 {
		// A directive line is standalone when no syntax starts on it —
		// then (and only then) it covers the line below.
		codeLines := make(map[int]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup:
				// Comments are not code: a Doc comment attached to a
				// declaration is still a standalone directive line.
				return true
			}
			codeLines[p.Fset.Position(n.Pos()).Line] = true
			return true
		})
		for line := range d.any {
			if !codeLines[line] {
				d.standalone[line] = true
			}
		}
	}
	if p.directiveLines == nil {
		p.directiveLines = make(map[*ast.File]directives)
	}
	p.directiveLines[file] = d
	return d
}

// matchesDirective accepts `//lint:word` exactly or followed by a space
// and a free-form justification, which the style in this repository
// treats as mandatory in spirit: a bare waiver with no reason should not
// survive review.
func matchesDirective(text, want string) bool {
	if len(text) < len(want) || text[:len(want)] != want {
		return false
	}
	rest := text[len(want):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}
