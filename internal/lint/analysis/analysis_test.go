package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestMatchesDirective(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"//lint:wallclock", true},
		{"//lint:wallclock boot stamp", true},
		{"//lint:wallclock\tboot stamp", true},
		{"//lint:wallclocks", false}, // different word, no waiver
		{"// lint:wallclock", false}, // directives are machine-shaped: no space
		{"//lint:lockedio", false},   // different analyzer's directive
		{"// plain comment", false},
	}
	for _, c := range cases {
		if got := matchesDirective(c.text, "//lint:wallclock"); got != c.want {
			t.Errorf("matchesDirective(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

const suppressSrc = `package p

import "time"

func f() {
	a := time.Now()
	//lint:wallclock reason one
	b := time.Now()
	c := time.Now() //lint:wallclock reason two
	d := time.Now()
	_, _, _, _ = a, b, c, d
}
`

// TestSuppressed pins the two accepted directive placements: trailing the
// offending line, or alone on the line directly above it.
func TestSuppressed(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{
		Analyzer: &Analyzer{Name: "simdeterminism", Directive: "wallclock"},
		Fset:     fset,
		Files:    []*ast.File{file},
	}
	wantByLine := map[int]bool{ // line → suppressed?
		6:  false, // a: no directive
		8:  true,  // b: directive on the line above
		9:  true,  // c: trailing directive
		10: false, // d: the directive two lines up must not bleed down
	}
	tokFile := fset.File(file.Pos())
	for line, want := range wantByLine {
		pos := tokFile.LineStart(line)
		if got := pass.Suppressed(pos); got != want {
			t.Errorf("line %d: Suppressed = %v, want %v", line, got, want)
		}
	}
}
