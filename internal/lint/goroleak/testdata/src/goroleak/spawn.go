// Fixture for the goroleak analyzer: every spawned forever-loop must be
// able to observe a stop signal.
package goroleak

import (
	"context"
	"sync"
)

func work() {}

// leakLit spawns a literal that loops forever with nothing watching for
// shutdown.
func leakLit() {
	go func() { // want "goroutine runs forever with no stop signal"
		for {
			work()
		}
	}()
}

// leakNamed spawns a named forever-loop with no stop path.
func leakNamed() {
	go runForever() // want "goroutine runs forever with no stop signal"
}

func runForever() {
	for {
		work()
	}
}

// leakTransitive loops forever only through a callee — the summary
// index must close Blocking over the call graph.
func leakTransitive() {
	go wrapper() // want "goroutine runs forever with no stop signal"
}

func wrapper() {
	work()
	runForever()
}

// ctxLit closes over a context: the select ties its lifetime.
func ctxLit(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// ctxParam passes the context as an argument.
func ctxParam(ctx context.Context) {
	go runLoop(ctx)
}

func runLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			work()
		}
	}
}

// stopChan receives from a struct{} channel.
func stopChan(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// wgArg hands the spawned body a WaitGroup pointer: the caller joins it.
func wgArg(wg *sync.WaitGroup) {
	go drain(wg)
}

func drain(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		work()
	}
}

// bounded goroutines that terminate on their own are not leaks.
func bounded() {
	go work()
	go func() {
		for i := 0; i < 3; i++ {
			work()
		}
	}()
}
