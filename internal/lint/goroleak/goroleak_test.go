package goroleak_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer, "goroleak")
}
