// Package goroleak implements the centurylint analyzer that catches
// goroutines whose lifetime is tied to nothing.
//
// A century-scale endpoint restarts its daemons on config swaps,
// failover, and firmware migration — on the paper's timescales,
// thousands of times. A goroutine that loops forever without observing
// any stop signal survives every one of those restarts' soft-shutdown
// paths: it keeps a stale socket, a stale shard handle, or a stale
// ticker alive until the process is killed, and leaks one copy per
// restart until then. The failure is invisible in short tests and
// compounds over exactly the horizons this repository simulates.
//
// For every `go` statement the analyzer asks the dataflow call
// summaries two questions about the spawned body, both transitive over
// the static call graph:
//
//   - does it loop forever (a `for` with no condition, directly or in
//     any callee)?
//   - can it observe a stop signal (a context.Context reference — own
//     parameter or closed-over — a receive from a struct{} stop
//     channel, or a sync.WaitGroup.Done)?
//
// Forever-looping and unstoppable is a leak. Passing a Context, a
// struct{} channel, or a *sync.WaitGroup as a call argument counts as
// stoppable even when the callee's body is outside the loaded
// packages. Dynamic dispatch (interface methods, function values)
// resolves to no summary and is skipped — conservative in the
// no-false-positive direction. Intentional process-lifetime goroutines
// annotate `//lint:goroleak <reason>`.
package goroleak

import (
	"go/ast"
	"go/types"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/dataflow"
	"centuryscale/internal/lint/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name:      "goroleak",
	Directive: "goroleak",
	Doc: "flag go statements that spawn a forever-looping body with no way to " +
		"observe shutdown: no context, no stop channel, no WaitGroup — a " +
		"goroutine leaked once per daemon restart",
	Run: run,
}

func run(pass *analysis.Pass) error {
	index := pass.Summaries
	if index == nil {
		// Without the driver's summary pre-pass there is no transitive
		// call information; build a package-local index so the analyzer
		// still works under single-analyzer test harnesses.
		index = dataflow.NewIndex()
		index.Add(dataflow.Summarize(pass.TypesInfo, pass.Files))
		index.Resolve()
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkSpawn(pass, index, g)
			return true
		})
	}
	return nil
}

func checkSpawn(pass *analysis.Pass, index *dataflow.Index, g *ast.GoStmt) {
	call := g.Call
	for _, arg := range call.Args {
		if isStopArg(pass.TypesInfo.TypeOf(arg)) {
			return
		}
	}

	var sum *dataflow.FuncSummary
	name := "the function literal"
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		sum = dataflow.SummarizeLit(pass.TypesInfo, fun)
	default:
		callee := typeutil.Callee(pass.TypesInfo, call)
		if callee == nil {
			return // dynamic dispatch: no summary, stay quiet
		}
		sum = index.Lookup(dataflow.Name(callee))
		if sum == nil {
			return // outside the loaded packages
		}
		name = callee.Name()
	}

	if index.BlockingOf(sum) && !index.StopsOf(sum) {
		pass.Reportf(g.Pos(),
			"goroutine runs forever with no stop signal: %s loops without observing a context, stop channel, or WaitGroup, and leaks on every daemon restart; tie its lifetime to a ctx (select on ctx.Done()) or annotate //lint:goroleak <reason>",
			name)
	}
}

// isStopArg reports whether an argument of type t hands the goroutine a
// way to learn about shutdown: a context, a struct{} channel, or a
// WaitGroup pointer.
func isStopArg(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Name() == "Context" && typeutil.PkgPath(obj) == "context" {
			return true
		}
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "WaitGroup" && typeutil.PkgPath(obj) == "sync" {
				return true
			}
		}
	}
	if ch, ok := t.Underlying().(*types.Chan); ok {
		if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
			return true
		}
	}
	return false
}
