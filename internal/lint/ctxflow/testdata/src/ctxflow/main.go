// Fixture for the ctxflow analyzer: a daemon-shaped package main that
// must keep the cancellation chain intact into cross-package loops.
package main

import (
	"context"

	"ctxflow/loop"
)

func main() {
	// Creating the root context in main is the one legitimate place for
	// context.Background: main has no ctx parameter.
	ctx := context.Background()
	loop.RunCtx(ctx)
	loop.Run()    // want "loops forever but takes no context"
	runLocally()  // want "loops forever but takes no context"
	loop.Finite() // returns on its own: not an orphaned loop
}

// runLocally is a same-package orphaned loop; the index covers the main
// package too.
func runLocally() {
	for {
		step()
	}
}

func step() {}

// handle receives a ctx and must not resurrect a fresh root.
func handle(ctx context.Context) {
	fresh := context.Background() // want "resurrects an un-cancellable root"
	todo := context.TODO()        // want "resurrects an un-cancellable root"
	_ = fresh
	_ = todo
	_ = ctx
}

// handleLit: literals may start a detached lifecycle; the resurrection
// check does not descend into them (goroleak audits their lifetime).
func handleLit(ctx context.Context) {
	f := func() context.Context { return context.Background() }
	_ = f()
	_ = ctx
}

// noCtx has no ctx parameter, so a fresh root is the only option.
func noCtx() context.Context {
	return context.Background()
}
