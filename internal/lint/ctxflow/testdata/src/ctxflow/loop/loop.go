// Local fixture import: the analyzed main package calls into these
// loops across a package boundary, so the orphaned-entry rule must see
// their summaries through the shared index.
package loop

import "context"

func work() {}

// Run loops forever with no way to hear about shutdown.
func Run() {
	for {
		work()
	}
}

// RunCtx observes the context: cancellable from main.
func RunCtx(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			work()
		}
	}
}

// Finite terminates on its own.
func Finite() {
	for i := 0; i < 8; i++ {
		work()
	}
}
