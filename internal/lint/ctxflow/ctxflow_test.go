package ctxflow_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxflow")
}
