// Package ctxflow implements the centurylint analyzer that keeps the
// cancellation chain intact from `cmd/*d` mains down into blocking
// loops.
//
// The repository's shutdown story is one unbroken chain: main owns the
// root context, every daemon loop selects on ctx.Done(), and soft
// restarts (config swap, failover drills, firmware migration — routine
// events at century scale) tear the whole tree down by cancelling one
// context. Two coding patterns silently cut that chain:
//
//   - Resurrection: a function that already receives a ctx calls
//     context.Background() (or TODO) and hands the fresh root to its
//     callees. Everything downstream is now un-cancellable; shutdown
//     "works" in tests that kill the process and deadlocks in the field
//     where it must drain gracefully.
//   - Orphaned entry: package main calls a module-local function that
//     loops forever but has no context parameter and observes no stop
//     signal. The loop is unreachable by cancellation from the moment
//     the program starts.
//
// Blocking/stop facts come from the dataflow call summaries and are
// transitive; dynamic dispatch stays quiet. Function literals are
// skipped in the resurrection check — a literal may deliberately start
// a detached lifecycle (and goroleak audits its lifetime separately).
// Intentional breaks annotate `//lint:ctxflow <reason>`.
package ctxflow

import (
	"go/ast"
	"go/types"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/dataflow"
	"centuryscale/internal/lint/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name:      "ctxflow",
	Directive: "ctxflow",
	Doc: "flag breaks in the cancellation chain: context.Background()/TODO() " +
		"resurrected inside a function that already has a ctx parameter, and " +
		"package-main calls into forever-looping module functions that take no " +
		"context and observe no stop signal",
	Run: run,
}

func run(pass *analysis.Pass) error {
	index := pass.Summaries
	if index == nil {
		index = dataflow.NewIndex()
		index.Add(dataflow.Summarize(pass.TypesInfo, pass.Files))
		index.Resolve()
	}
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasCtx := declHasCtx(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := typeutil.Callee(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				if hasCtx && typeutil.PkgPath(callee) == "context" &&
					(callee.Name() == "Background" || callee.Name() == "TODO") {
					pass.Reportf(call.Pos(),
						"context.%s() inside a function that already has a ctx parameter resurrects an un-cancellable root and cuts everything downstream out of the shutdown chain; derive from the incoming ctx instead, or annotate //lint:ctxflow <reason>",
						callee.Name())
				}
				if isMain {
					if sum := index.Lookup(dataflow.Name(callee)); sum != nil &&
						index.BlockingOf(sum) && !index.StopsOf(sum) {
						pass.Reportf(call.Pos(),
							"%s loops forever but takes no context and observes no stop signal: cancellation from main can never reach it; thread the root ctx through this call chain or annotate //lint:ctxflow <reason>",
							callee.Name())
					}
				}
				return true
			})
		}
	}
	return nil
}

// declHasCtx reports whether fd's signature includes a context.Context
// parameter.
func declHasCtx(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		named, ok := sig.Params().At(i).Type().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && typeutil.PkgPath(obj) == "context" {
			return true
		}
	}
	return false
}
