// Package typeutil holds the small type-resolution helpers shared by the
// centurylint analyzers: resolving call targets through go/types and
// matching objects against package paths and receiver types.
package typeutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the function object a call expression invokes, or nil
// for indirect calls (function values, conversions, builtins).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgPath returns the import path of the package declaring obj, or "" for
// builtins and objects in the universe scope.
func PkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// HasPathSuffix reports whether path is exactly one of the entries or
// ends in "/"+entry — the convention centurylint uses so analyzers match
// both the real module paths ("centuryscale/internal/sim") and the short
// fixture paths analysistest assigns ("internal/sim").
func HasPathSuffix(path string, entries []string) bool {
	for _, e := range entries {
		if path == e || strings.HasSuffix(path, "/"+e) {
			return true
		}
	}
	return false
}

// ReceiverNamed returns the named type of a method's receiver, looking
// through a pointer, or nil if fn is not a method (or the receiver is
// unnamed).
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsMethodOf reports whether fn is a method on the named type
// pkgPath.typeName (receiver pointer-ness ignored).
func IsMethodOf(fn *types.Func, pkgPath, typeName string) bool {
	named := ReceiverNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && PkgPath(obj) == pkgPath
}

// ReturnsError reports whether fn's final result is the built-in error
// type.
func ReturnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
