package simdeterminism_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/simdeterminism"
)

// The internal/sim fixture must produce exactly its want-annotated
// diagnostics (failing fixtures); the internal/daemon fixture uses the
// same wall-clock functions outside the virtual-time set and must stay
// silent (passing fixture).
func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", simdeterminism.Analyzer,
		"internal/sim", "internal/daemon")
}
