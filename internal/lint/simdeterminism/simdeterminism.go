// Package simdeterminism implements the centurylint analyzer that keeps
// wall-clock time and ambient randomness out of the simulator's
// virtual-time packages.
//
// The determinism contract (internal/sim package doc; EXPERIMENTS.md) is
// that a seed identifies a run bit-for-bit. One stray time.Now or global
// math/rand draw breaks that silently: results still look plausible, they
// just stop being reproducible — the exact engineering-discipline drift
// the century-scale argument cannot afford. The daemon/network layer
// legitimately lives on the wall clock; inside it, annotate the use with
// `//lint:wallclock <reason>` (or keep the package out of
// VirtualTimePackages).
package simdeterminism

import (
	"go/ast"
	"go/types"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/typeutil"
)

// VirtualTimePackages lists the packages that run on the simulator's
// virtual clock, as exact import paths or "/"-suffixes. centuryscale is
// the root simulation library; internal/rng is included so the
// deterministic generator itself can never be seeded or perturbed by the
// wall clock.
var VirtualTimePackages = []string{
	"centuryscale",
	"internal/sim",
	"internal/reliability",
	"internal/device",
	"internal/energy",
	"internal/fleet",
	"internal/experiments",
	"internal/econ",
	"internal/traffic",
	"internal/concrete",
	"internal/city",
	"internal/airfield",
	"internal/metering",
	"internal/stats",
	"internal/rng",
	// The tiered read path runs entirely on the data clock (arrival
	// durations): fold watermarks, window grids, and gap statistics are
	// functions of the series, never of the serving process's wall time
	// — that is what makes rollup state byte-deterministic across
	// crashes and re-folds.
	"internal/rollup",
	"internal/query",
}

// wallClockFuncs are the time package functions that read or schedule off
// the process clock. time.Duration arithmetic and constants stay legal:
// virtual time is itself a time.Duration.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

var Analyzer = &analysis.Analyzer{
	Name:      "simdeterminism",
	Directive: "wallclock",
	Doc: "forbid wall-clock reads (time.Now, time.Since, timers) and math/rand " +
		"in virtual-time packages; simulated processes must take time from the " +
		"sim clock and randomness from centuryscale/internal/rng",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !typeutil.HasPathSuffix(pass.Pkg.Path(), VirtualTimePackages) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := importPath(imp)
			if randPackages[path] {
				pass.Reportf(imp.Pos(),
					"virtual-time package %s imports %s: ambient randomness breaks seed-identified replay; draw from centuryscale/internal/rng instead",
					pass.Pkg.Path(), path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if typeutil.PkgPath(fn) == "time" && wallClockFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock inside virtual-time package %s: simulated processes must take time from the sim clock (internal/sim); annotate //lint:wallclock <reason> if wall-clock is genuinely intended",
					fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

func importPath(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}
