// Fixture: a virtual-time package (path suffix internal/sim) that leaks
// wall-clock reads and ambient randomness — every class simdeterminism
// must catch, plus the legal uses it must leave alone.
package sim

import (
	"math/rand" // want `virtual-time package internal/sim imports math/rand`
	"time"
)

// Durations are the currency of virtual time: arithmetic on them is legal.
const tick = 250 * time.Millisecond

func bad() time.Duration {
	start := time.Now()           // want `time\.Now reads the wall clock inside virtual-time package internal/sim`
	elapsed := time.Since(start)  // want `time\.Since reads the wall clock`
	time.Sleep(tick)              // want `time\.Sleep reads the wall clock`
	<-time.After(tick)            // want `time\.After reads the wall clock`
	t := time.NewTicker(tick)     // want `time\.NewTicker reads the wall clock`
	t.Stop()
	_ = rand.Int() // the import diagnostic covers every use
	return elapsed
}

// A wall-clock function smuggled out as a value is still a wall-clock read.
var clock = time.Now // want `time\.Now reads the wall clock`

func waived() int64 {
	//lint:wallclock boot banner timestamp; never enters the simulation
	stamp := time.Now().UnixNano()
	trailing := time.Now().UnixNano() //lint:wallclock same line form
	return stamp + trailing
}

//lint:wallclock doc-comment placement: the directive is the decl's Doc node
func waivedAtDeclLevel() int64 { return time.Now().UnixNano() }

func notCovered() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}
