// Fixture: the daemon/network layer genuinely lives on the wall clock,
// and its package path is not in VirtualTimePackages — nothing here may
// be reported.
package daemon

import "time"

func uptime(started time.Time) time.Duration {
	time.Sleep(time.Millisecond)
	return time.Since(started)
}

func stamp() time.Time { return time.Now() }
