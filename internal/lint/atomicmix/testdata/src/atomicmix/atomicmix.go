// Fixture for the atomicmix analyzer: a struct field must pick one
// discipline — sync/atomic everywhere, or plain access everywhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits    uint64
	misses  uint64
	plainly uint64
}

// bump uses the atomics...
func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.misses, 1)
}

// snapshot mixes in plain loads — the race the analyzer exists for.
func (c *counters) snapshot() (uint64, uint64) {
	h := c.hits // want `plain access of counters\.hits, which is accessed with atomic\.AddUint64 elsewhere in this package`
	m := atomic.LoadUint64(&c.misses)
	return h, m
}

// reset mixes in a plain store.
func (c *counters) reset() {
	c.hits = 0 // want `plain access of counters\.hits`
}

// onlyPlain never touches sync/atomic: one consistent discipline, not
// flagged.
func (c *counters) onlyPlain() uint64 {
	c.plainly++
	return c.plainly
}

// escape leaks the address of an atomically-accessed field to a helper
// that is free to dereference it plainly.
func (c *counters) escape() {
	scribble(&c.misses) // want `address of counters\.misses escapes outside sync/atomic`
}

func scribble(p *uint64) { *p = 0 }

// modern uses the wrapper types: no address-taking, no mix possible,
// never flagged.
type modern struct {
	hits atomic.Uint64
}

func (m *modern) bump() uint64 {
	m.hits.Add(1)
	return m.hits.Load()
}

// published documents the constructor exemption pattern: the waiver
// states why the plain write cannot race (the struct is not yet
// shared).
type published struct {
	gen uint64
}

func newPublished() *published {
	p := &published{}
	p.gen = 1 //lint:atomicmix not yet published: no other goroutine can hold p before this returns
	return p
}

func (p *published) next() uint64 {
	return atomic.AddUint64(&p.gen, 1)
}
