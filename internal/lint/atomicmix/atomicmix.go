// Package atomicmix implements the centurylint analyzer that catches
// struct fields accessed both through sync/atomic and by plain
// load/store.
//
// This is the exact bug class PR 5 fixed by hand in ingestCounters:
// half the code path moved to atomic.AddUint64 while a reader kept a
// plain load, which the race detector only catches when a test happens
// to hit the interleaving. The mix is worse than either discipline
// alone — the atomic calls look like the field is safe, the plain
// accesses make it a data race anyway, and on a node that must run for
// decades the race eventually loses.
//
// The analyzer is package-local and object-precise: pass one collects
// every struct field whose address is taken as the pointer argument of
// a sync/atomic function anywhere in the package; pass two reports
//
//   - every plain selector read or write of such a field (the atomic
//     call sites themselves are sanctioned), and
//   - every escape of the field's address to anything that is not a
//     sync/atomic call — once the pointer leaves the atomic API there
//     is no discipline left to check.
//
// Fields of the modern wrapper types (atomic.Int64, atomic.Pointer...)
// cannot mix by construction and never trigger the analyzer — they are
// also the recommended fix. Intentional mixes (e.g. a constructor
// writing before the struct is published) annotate
// `//lint:atomicmix <reason>`.
package atomicmix

import (
	"go/ast"
	"go/types"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name:      "atomicmix",
	Directive: "atomicmix",
	Doc: "flag struct fields accessed both through sync/atomic and by plain " +
		"load/store (the ingestCounters bug class): a racy mix that defeats the " +
		"atomics; migrate the field to atomic.Int64-style wrappers or drop the atomics",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass one: fields used atomically, and the sanctioned &field
	// expressions (the atomic call arguments themselves).
	atomicFields := make(map[*types.Var]string) // field -> one atomic op name, for the message
	sanctioned := make(map[*ast.UnaryExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := typeutil.Callee(pass.TypesInfo, call)
			if callee == nil || typeutil.PkgPath(callee) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				if f := fieldOf(pass.TypesInfo, un.X); f != nil {
					sanctioned[un] = true
					if _, seen := atomicFields[f]; !seen {
						atomicFields[f] = "atomic." + callee.Name()
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass two: plain accesses and address escapes of those fields.
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := fieldOf(pass.TypesInfo, sel)
			if f == nil {
				return true
			}
			op, mixed := atomicFields[f]
			if !mixed {
				return true
			}
			// Walk one level up: &field inside a sanctioned atomic
			// argument is the atomic access itself; &field anywhere else
			// is an escape; a bare selector is a plain access.
			if len(stack) >= 2 {
				if un, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && un.Op.String() == "&" {
					if sanctioned[un] {
						return true
					}
					pass.Reportf(sel.Pos(),
						"address of %s.%s escapes outside sync/atomic: the field is accessed with %s elsewhere, and a leaked pointer allows plain loads/stores that race with the atomics; keep the address inside sync/atomic calls or migrate the field to an atomic wrapper type, or annotate //lint:atomicmix <reason>",
						ownerName(pass.TypesInfo, sel, f), f.Name(), op)
					return true
				}
			}
			pass.Reportf(sel.Pos(),
				"plain access of %s.%s, which is accessed with %s elsewhere in this package: mixing atomic and plain load/store is a data race (the ingestCounters bug class PR 5 fixed); use sync/atomic for every access or migrate the field to an atomic wrapper type, or annotate //lint:atomicmix <reason>",
				ownerName(pass.TypesInfo, sel, f), f.Name(), op)
			return true
		})
	}
	return nil
}

// fieldOf resolves a selector expression to the struct field it
// denotes, or nil.
func fieldOf(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// ownerName renders the owning struct's name for diagnostics from the
// selector's base type, falling back to the package name — fields carry
// no back-pointer to their named type.
func ownerName(info *types.Info, sel *ast.SelectorExpr, f *types.Var) string {
	t := info.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Name()
	}
	return "?"
}
