package atomicmix_test

import (
	"testing"

	"centuryscale/internal/lint/analysistest"
	"centuryscale/internal/lint/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "atomicmix")
}
