// Package lint assembles the centurylint analyzer suite: the four
// invariant checkers that turn this repository's hard-won determinism and
// durability discipline from code-review folklore into a pre-merge gate.
//
//   - simdeterminism: no wall clock or math/rand in virtual-time packages
//   - lockedio: no blocking I/O while a mutex is held
//   - syncerr: no discarded Close/Sync/Flush/Truncate errors on
//     durability paths
//   - seedflow: no nondeterministic seeds into internal/rng
//
// Run the suite with `make lint` or `go run ./cmd/centurylint ./...`.
// See DESIGN.md §32 for the invariants and the //lint: waiver directives.
package lint

import (
	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/lockedio"
	"centuryscale/internal/lint/seedflow"
	"centuryscale/internal/lint/simdeterminism"
	"centuryscale/internal/lint/syncerr"
)

// Suite returns the analyzers in deterministic order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		simdeterminism.Analyzer,
		lockedio.Analyzer,
		syncerr.Analyzer,
		seedflow.Analyzer,
	}
}
