// Package lint assembles the centurylint analyzer suite: the invariant
// checkers that turn this repository's hard-won determinism, durability,
// and lifetime discipline from code-review folklore into a pre-merge
// gate.
//
//   - simdeterminism: no wall clock or math/rand in virtual-time packages
//   - lockedio: no blocking I/O while a mutex is held, transitively
//     across packages
//   - syncerr: no discarded Close/Sync/Flush/Truncate errors on
//     durability paths
//   - seedflow: no nondeterministic seeds into internal/rng
//   - centurytime: no time.Duration arithmetic that can exceed int64
//     nanoseconds (~292 years)
//   - goroleak: no forever-looping goroutines that cannot observe a
//     stop signal
//   - ctxflow: no breaks in the cancellation chain from cmd/*d mains
//     into blocking loops
//   - lockorder: no cycles in the whole-program lock-acquisition graph
//     (potential deadlocks); index-ordered accumulation is a safe
//     hierarchy
//   - atomicmix: no struct field accessed both through sync/atomic and
//     by plain load/store
//   - lifecycle: every goroutine spawned in daemon packages is tied to
//     shutdown and has a join path
//   - allocbudget: //lint:hotpath budget=N annotations bound the
//     function's transitive always-class allocation count, with
//     over-budget witness chains
//   - allocfree: the obs metric primitives and the tsdb append path
//     reach no always-class allocation, as the BENCH baselines promise
//   - waiveraudit: every //lint: waiver names a real directive, carries
//     a reason, and still suppresses a finding
//
// waiveraudit must stay last: it audits the suppression log the other
// analyzers populate while they run.
//
// Run the suite with `make lint` or `go run ./cmd/centurylint ./...`.
// See DESIGN.md §32–§33 for the invariants, the //lint: waiver
// directives, and the baseline gate.
package lint

import (
	"centuryscale/internal/lint/allocbudget"
	"centuryscale/internal/lint/allocfree"
	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/atomicmix"
	"centuryscale/internal/lint/centurytime"
	"centuryscale/internal/lint/ctxflow"
	"centuryscale/internal/lint/goroleak"
	"centuryscale/internal/lint/lifecycle"
	"centuryscale/internal/lint/lockedio"
	"centuryscale/internal/lint/lockorder"
	"centuryscale/internal/lint/seedflow"
	"centuryscale/internal/lint/simdeterminism"
	"centuryscale/internal/lint/syncerr"
	"centuryscale/internal/lint/waiveraudit"
)

// Suite returns the analyzers in deterministic order, waiveraudit last.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		simdeterminism.Analyzer,
		lockedio.Analyzer,
		syncerr.Analyzer,
		seedflow.Analyzer,
		centurytime.Analyzer,
		goroleak.Analyzer,
		ctxflow.Analyzer,
		lockorder.Analyzer,
		atomicmix.Analyzer,
		lifecycle.Analyzer,
		allocbudget.Analyzer,
		allocfree.Analyzer,
		waiveraudit.Analyzer,
	}
}
