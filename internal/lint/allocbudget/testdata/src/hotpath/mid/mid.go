// Fixture mid: one hop between the annotated root and the allocation.
package mid

import "hotpath/leaf"

func Build(msg string) error { return leaf.Wrap(msg) }

func Pure(n int) int { return leaf.Clean(n) }
