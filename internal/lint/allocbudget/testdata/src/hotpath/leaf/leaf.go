// Fixture leaf: the allocation two hops below the annotated roots.
package leaf

import "errors"

// Wrap allocates once on the steady path.
func Wrap(msg string) error { return errors.New(msg) }

// Clean is allocation-free.
func Clean(n int) int { return n + 1 }
