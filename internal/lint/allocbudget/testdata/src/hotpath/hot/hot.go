// Fixture roots for the allocbudget analyzer: //lint:hotpath
// annotations whose budgets are checked against the transitive
// allocation effects, with the over-budget witness reported two
// packages away from the allocation itself.
package hot

import (
	"hotpath/leaf"
	"hotpath/mid"
)

// Forward's only allocation is two hops away, in leaf.Wrap; the
// diagnostic lands here, at the annotated root, with the witness chain.
//
//lint:hotpath budget=0 the forward path must not allocate
func Forward(msg string) error { // want "hot path hotpath/hot.Forward exceeds its allocation budget: 1 always-allocations per call, budget=0 .witness: call to errors.New, via hotpath/hot.Forward -> hotpath/mid.Build -> hotpath/leaf.Wrap."
	return mid.Build(msg)
}

// InBudget pays the same allocation but declares it: quiet.
//
//lint:hotpath budget=1 one wrapped error per call is the contract
func InBudget(msg string) error {
	return mid.Build(msg)
}

// Batch ranges over the packet slice — the batch-loop carve-out: the
// per-element allocation counts once, not per iteration.
//
//lint:hotpath budget=1 one error for the whole batch
func Batch(msgs []string) error {
	var last error
	for _, m := range msgs {
		last = mid.Build(m)
	}
	return last
}

// Drain loops forever: an allocating callee per iteration is unbounded,
// and no finite budget covers it.
//
//lint:hotpath budget=64 no budget covers an unbounded loop
func Drain(done chan struct{}) { // want "hot path hotpath/hot.Drain allocates without bound: allocating call in an unbounded loop .via hotpath/hot.Drain -> hotpath/leaf.Wrap."
	for {
		leaf.Wrap("tick")
		select {
		case <-done:
			return
		default:
		}
	}
}

// Cold error branches do not count against the budget.
//
//lint:hotpath budget=0 errors are off the steady path
func ColdOnly(msg string, fail bool) error {
	if fail {
		return mid.Build(msg)
	}
	return nil
}

//lint:hotpath budget zero reason-first is not the syntax // want "malformed //lint:hotpath annotation"
func Malformed() {}
