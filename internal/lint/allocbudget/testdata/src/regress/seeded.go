package regress

import "fmt"

// Seeded is Fill plus exactly one fmt.Sprintf line: the Sprintf itself
// and the boxing of its non-constant argument push the count to 3.
//
//lint:hotpath budget=1 one staging buffer per call
func Seeded(pts []int) (string, []int) { // want "hot path regress.Seeded exceeds its allocation budget: 3 always-allocations per call, budget=1 .witness: make, via regress.Seeded."
	out := make([]int, 0, len(pts))
	for _, p := range pts {
		out = append(out, p)
	}
	tag := fmt.Sprintf("n=%d", len(pts))
	return tag, out
}
