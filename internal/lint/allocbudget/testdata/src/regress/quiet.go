// Seeded-regression fixture, quiet half: Fill meets its budget exactly.
// seeded.go is the same body plus one fmt.Sprintf — the single line
// that flips the analyzer from quiet to failing.
package regress

// Fill stages the batch into a fresh buffer; the one make is declared.
//
//lint:hotpath budget=1 one staging buffer per call
func Fill(pts []int) []int {
	out := make([]int, 0, len(pts))
	for _, p := range pts {
		out = append(out, p)
	}
	return out
}
