package allocbudget_test

import (
	"testing"

	"centuryscale/internal/lint/allocbudget"
	"centuryscale/internal/lint/analysistest"
)

func TestAllocBudget(t *testing.T) {
	analysistest.Run(t, "testdata", allocbudget.Analyzer, "hotpath/hot", "regress")
}
