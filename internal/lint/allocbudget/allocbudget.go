// Package allocbudget implements the centurylint analyzer that enforces
// `//lint:hotpath budget=N <reason>` function annotations: the
// annotated function's transitive always-class allocation count (the
// static measure of dataflow's allocation-effects pass, DESIGN.md §38)
// must not exceed N, and no path from it may reach an allocation inside
// an unbounded loop. Both BENCH baselines call allocations "the
// machine-independent contract" on this single-core host; the
// annotation turns that contract from prose into a merge-gate failure,
// with a witness chain naming which callee allocates and via which call
// path.
//
// Semantics of the account (see internal/lint/dataflow/allocs.go):
// always-class sites count against the budget; amortized sites (append
// growth, map insert) do not — geometric growth spreads them to O(1)
// per op, and the AllocsPerRun regression tests pin their runtime cost
// instead; cold (early-terminating error/exit) branches are free — a
// budget bounds the steady state, not the error path. Loop-carried
// allocations are unbounded — and reported regardless of N — unless the
// loop is a batch range over a slice/array/string (the packet loop
// itself), whose sites count once.
//
// The annotation is not a waiver and cannot be waived: an over-budget
// diagnostic is fixed by removing the allocation or — with review — by
// raising N in the annotation. Accordingly this analyzer reports
// through pass.Report directly, bypassing directive suppression: the
// `//lint:hotpath` line above the declaration must not silence the very
// diagnostic it creates. Consumed annotations are logged to the shared
// suppression log so waiveraudit's staleness rule flags a hotpath
// comment that annotates nothing.
package allocbudget

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name:      "allocbudget",
	Directive: "hotpath",
	Doc: "enforce //lint:hotpath budget=N annotations: the function's transitive " +
		"always-class allocation count (static measure, cold branches excluded, " +
		"amortized growth exempt) must stay within N and must not reach an " +
		"allocation inside an unbounded loop; diagnostics carry the witness call " +
		"chain to the allocating callee",
	Run: run,
}

const directive = "//lint:hotpath"

// An annotation is one parsed //lint:hotpath comment attached to a
// function declaration.
type annotation struct {
	budget int
	line   int
	file   string
}

func run(pass *analysis.Pass) error {
	ix := pass.Summaries
	if ix == nil {
		ix = dataflow.NewIndex()
		ix.Add(dataflow.Summarize(pass.TypesInfo, pass.Files))
		ix.Resolve()
	}

	for _, file := range pass.Files {
		// Every hotpath comment in the file, by line.
		comments := make(map[int]*ast.Comment)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if isHotpath(c.Text) {
					comments[pass.Fset.Position(c.Pos()).Line] = c
				}
			}
		}
		if len(comments) == 0 {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := attached(pass, fd, comments)
			if c == nil {
				continue
			}
			checkDecl(pass, ix, fd, c)
		}
	}
	return nil
}

// attached finds the hotpath comment annotating fd: a member of its doc
// group, a standalone comment on the line directly above the `func`
// keyword, or trailing on the declaration's first line.
func attached(pass *analysis.Pass, fd *ast.FuncDecl, comments map[int]*ast.Comment) *ast.Comment {
	declLine := pass.Fset.Position(fd.Pos()).Line
	if c := comments[declLine]; c != nil {
		return c
	}
	if c := comments[declLine-1]; c != nil {
		return c
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if isHotpath(c.Text) {
				return c
			}
		}
	}
	return nil
}

func checkDecl(pass *analysis.Pass, ix *dataflow.Index, fd *ast.FuncDecl, c *ast.Comment) {
	pos := pass.Fset.Position(c.Pos())
	budget, ok := parseBudget(c.Text)
	if !ok {
		// Malformed annotations report like over-budget ones: directly,
		// unsuppressable. A hotpath line that parses as nothing must
		// not silently enforce nothing.
		pass.Report(analysis.Diagnostic{
			Pos:     c.Pos(),
			Message: "malformed //lint:hotpath annotation: want `//lint:hotpath budget=N <reason>`",
		})
		return
	}
	// The annotation did its job: exempt it from waiveraudit's
	// staleness rule even when the budget holds.
	if pass.Suppressions != nil {
		pass.Suppressions.Use(pos.Filename, pos.Line)
	}

	name := declName(pass, fd)
	if name == "" {
		return
	}
	e, indexed := ix.AllocsOf(name)
	if !indexed {
		return
	}
	if e.Unbounded {
		chain, desc := ix.AllocUnboundedWitness(name)
		pass.Report(analysis.Diagnostic{
			Pos: fd.Name.Pos(),
			Message: fmt.Sprintf("hot path %s allocates without bound: %s (via %s)",
				name, desc, strings.Join(chain, " -> ")),
		})
		return
	}
	if e.Always > budget {
		chain, site := ix.AllocWitness(name)
		pass.Report(analysis.Diagnostic{
			Pos: fd.Name.Pos(),
			Message: fmt.Sprintf("hot path %s exceeds its allocation budget: %d always-allocations per call, budget=%d (witness: %s, via %s)",
				name, e.Always, budget, site, strings.Join(chain, " -> ")),
		})
	}
}

// declName returns the dataflow summary key for fd.
func declName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	return dataflow.Name(fn)
}

// isHotpath reports whether a comment is a //lint:hotpath directive
// (exactly, or followed by whitespace and arguments).
func isHotpath(text string) bool {
	if !strings.HasPrefix(text, directive) {
		return false
	}
	rest := text[len(directive):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// parseBudget extracts N from `//lint:hotpath budget=N <reason>`.
func parseBudget(text string) (int, bool) {
	fields := strings.Fields(strings.TrimPrefix(text, directive))
	if len(fields) == 0 {
		return 0, false
	}
	v, ok := strings.CutPrefix(fields[0], "budget=")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
