// Package analysistest runs a centurylint analyzer over fixture packages
// and checks its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures follow the upstream GOPATH-shaped layout: the fixture package
// with import path P lives in <testdata>/src/P/. Fixture packages may
// import each other (resolved from source, recursively) and may import
// anything the surrounding module can build — stdlib or centuryscale
// packages — which is resolved through `go list -export` export data,
// exactly like the real driver. This keeps fixtures honest: they are
// type-checked with the true signatures of time.Now, sync.Mutex, or
// centuryscale/internal/rng, so an analyzer cannot pass its tests by
// matching on syntax the type checker would never produce.
//
// Expectations: a diagnostic must be reported on every line carrying a
// `// want "re"` comment (one regexp per expected diagnostic, matched
// against the message), and on no other line.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/dataflow"
	"centuryscale/internal/lint/loader"
)

// Run loads each fixture package (an import path under testdata/src),
// applies the analyzer, and reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunSuite(t, testdata, []*analysis.Analyzer{a}, pkgPaths...)
}

// RunSuite runs several analyzers over the fixtures exactly as the
// centurylint driver would: every fixture package (including the local
// packages they import) is summarized into one dataflow.Index first, so
// cross-package analyzers see transitive effects; the analyzers then
// run in order per package sharing one suppression log, so waiveraudit
// — placed last, as in lint.Suite — can audit the other analyzers'
// waivers. Diagnostics from all analyzers are matched against the
// fixtures' // want comments together.
func RunSuite(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &fixtureLoader{
		src:    filepath.Join(testdata, "src"),
		fset:   token.NewFileSet(),
		loaded: make(map[string]*fixturePkg),
	}
	if err := l.resolveExternals(pkgPaths); err != nil {
		t.Fatal(err)
	}
	for _, path := range pkgPaths {
		if _, err := l.load(path); err != nil {
			t.Fatalf("fixture %s: %v", path, err)
		}
	}

	// Summary pre-pass over everything loaded, local imports included.
	index := dataflow.NewIndex()
	for _, pkg := range l.loaded {
		index.Add(dataflow.Summarize(pkg.info, pkg.files))
	}
	index.Resolve()

	directives := make(map[string]string)
	for _, a := range analyzers {
		if a.Directive != "" {
			directives[a.Directive] = a.Name
		}
	}

	for _, path := range pkgPaths {
		pkg := l.loaded[path]
		checkPackage(t, analyzers, l.fset, pkg, index, directives)
	}
}

type fixturePkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type fixtureLoader struct {
	src      string
	fset     *token.FileSet
	loaded   map[string]*fixturePkg
	importer types.Importer
}

func (l *fixtureLoader) dirOf(path string) string { return filepath.Join(l.src, filepath.FromSlash(path)) }

func (l *fixtureLoader) isLocal(path string) bool {
	fi, err := os.Stat(l.dirOf(path))
	return err == nil && fi.IsDir()
}

func (l *fixtureLoader) goFiles(path string) ([]string, error) {
	entries, err := os.ReadDir(l.dirOf(path))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files under %s", l.dirOf(path))
	}
	return files, nil
}

// resolveExternals walks the fixture import graph, gathers every import
// that is not a testdata-local package, and builds the export-data
// importer for them in one `go list` invocation.
func (l *fixtureLoader) resolveExternals(roots []string) error {
	seen := make(map[string]bool)
	external := make(map[string]bool)
	var visit func(path string) error
	visit = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		files, err := l.goFiles(path)
		if err != nil {
			return err
		}
		parsed, err := loader.ParseDir(l.fset, l.dirOf(path), files)
		if err != nil {
			return err
		}
		for _, f := range parsed {
			for _, imp := range f.Imports {
				ipath, _ := strconv.Unquote(imp.Path.Value)
				if ipath == "unsafe" {
					continue
				}
				if l.isLocal(ipath) {
					if err := visit(ipath); err != nil {
						return err
					}
				} else {
					external[ipath] = true
				}
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return err
		}
	}

	exports := make(map[string]string)
	if len(external) > 0 {
		args := []string{"-export", "-deps"}
		for p := range external {
			args = append(args, p)
		}
		sort.Strings(args[2:])
		listed, err := loader.GoList(".", args...)
		if err != nil {
			return err
		}
		exports = loader.ExportMap(listed)
	}
	l.importer = loader.NewImporter(l.fset, exports, func(path string) (*types.Package, error) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	})
	return nil
}

// load parses and type-checks one testdata-local package, memoized.
func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	files, err := l.goFiles(path)
	if err != nil {
		return nil, err
	}
	parsed, err := loader.ParseDir(l.fset, l.dirOf(path), files)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := loader.Check(l.fset, path, parsed, l.importer)
	if err != nil {
		return nil, err
	}
	p := &fixturePkg{path: path, files: parsed, types: tpkg, info: info}
	l.loaded[path] = p
	return p, nil
}

func checkPackage(t *testing.T, analyzers []*analysis.Analyzer, fset *token.FileSet, pkg *fixturePkg, index *dataflow.Index, directives map[string]string) {
	t.Helper()
	var got []analysis.Diagnostic
	log := analysis.NewSuppressionLog()
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:     a,
			Fset:         fset,
			Files:        pkg.files,
			Pkg:          pkg.types,
			TypesInfo:    pkg.info,
			Summaries:    index,
			Suppressions: log,
			Directives:   directives,
			Report:       func(d analysis.Diagnostic) { got = append(got, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer failed on %s: %v", a.Name, pkg.path, err)
		}
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.files {
		filename := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s:%d: %v", filename, fset.Position(c.Pos()).Line, err)
				}
				if !ok {
					continue
				}
				k := key{filename, fset.Position(c.Pos()).Line}
				wants[k] = append(wants[k], patterns...)
			}
		}
	}

	for _, d := range got {
		p := fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		idx := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
			continue
		}
		wants[k] = append(wants[k][:idx], wants[k][idx+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// parseWant extracts the regexps from a `// want "re" "re"` comment.
// The marker may be embedded later in the comment text — a //lint:
// directive line carries its expectation inside the same comment, since
// a line comment runs to end of line. The second result is false when
// the comment holds no want marker at all.
func parseWant(text string) ([]*regexp.Regexp, bool, error) {
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		return nil, false, nil
	}
	rest := text[idx+len("// want "):]
	var out []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var quote byte
		switch rest[0] {
		case '"', '`':
			quote = rest[0]
		default:
			return nil, false, fmt.Errorf("want: expected quoted regexp, found %q", rest)
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return nil, false, fmt.Errorf("want: unterminated pattern %q", rest)
		}
		pat := rest[1 : 1+end]
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, false, fmt.Errorf("want: bad regexp %q: %v", pat, err)
		}
		out = append(out, re)
		rest = strings.TrimSpace(rest[2+end:])
	}
	if len(out) == 0 {
		return nil, false, fmt.Errorf("want: no patterns")
	}
	return out, true, nil
}
