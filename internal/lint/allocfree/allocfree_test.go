package allocfree_test

import (
	"testing"

	"centuryscale/internal/lint/allocfree"
	"centuryscale/internal/lint/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "internal/obs", "internal/tsdb")
}
