// Fixture mid: one hop between the contract method and the allocation.
package obshelper

import "obsleaf"

func Note(v float64) { obsleaf.Tag(v) }
