// Fixture leaf: the allocation two hops below the contract method.
package obsleaf

import "errors"

var last error

// Tag allocates once on the steady path.
func Tag(v float64) {
	if v < 0 {
		return
	}
	last = errors.New("observed")
}
