package tsdb

import "fmt"

type DB struct {
	shards []*shard
}

// Append carries the seeded regression: one fmt.Sprintf line (the call
// plus the boxing of its non-constant argument) breaks the contract the
// quiet half upholds.
func (db *DB) Append(p Point) error { // want "alloc-free contract: internal/tsdb..DB..Append allocates on the steady path .2 always-allocations per call; witness: interface boxing, via internal/tsdb..DB..Append."
	tag := fmt.Sprintf("dev=%s", p.Device)
	_ = tag
	sh := db.shards[len(p.Device)%len(db.shards)]
	return sh.append(p)
}
