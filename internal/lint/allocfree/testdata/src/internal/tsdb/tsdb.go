// Fixture mimicking the real storage append path: wal.append and
// shard.append are the quiet half of the seeded regression — scratch
// reuse and amortized growth only. seeded.go adds one fmt.Sprintf to
// DB.Append, the single line that flips the analyzer to failing.
package tsdb

type Point struct {
	Device string
	Value  float64
}

type wal struct {
	scratch []byte
	size    int
}

// append reuses its scratch frame: append growth is amortized, admitted
// by the contract.
func (w *wal) append(p Point) error {
	w.scratch = w.scratch[:0]
	w.scratch = append(w.scratch, byte(len(p.Device)))
	w.scratch = append(w.scratch, p.Device...)
	w.size += len(w.scratch)
	return nil
}

type shard struct {
	w      wal
	points map[string][]Point
}

// append is clean: map insert and slice growth are amortized.
func (sh *shard) append(p Point) error {
	if err := sh.w.append(p); err != nil {
		return err
	}
	sh.points[p.Device] = append(sh.points[p.Device], p)
	return nil
}
