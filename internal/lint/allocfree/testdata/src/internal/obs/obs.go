// Fixture mimicking the real metric primitives: the import-path suffix
// internal/obs puts these methods under the alloc-free contract, so the
// analyzer needs no annotation to check them.
package obs

import (
	"sync/atomic"

	"obshelper"
)

type Counter struct{ v atomic.Uint64 }

// Inc is clean: the contract holds, no diagnostic.
func (c *Counter) Inc() { c.v.Add(1) }

func (c *Counter) Add(n uint64) { c.v.Add(n) }

type Gauge struct{ v atomic.Uint64 }

// Set's CAS retry loop allocates nothing: a bare loop without
// allocation sites does not trip the unbounded rule.
func (g *Gauge) Set(x uint64) {
	for {
		old := g.v.Load()
		if g.v.CompareAndSwap(old, x) {
			return
		}
	}
}

func (g *Gauge) Add(n uint64) { g.v.Add(n) }

type Histogram struct {
	count atomic.Uint64
	last  atomic.Uint64
}

// Observe reaches an allocation two packages away; the diagnostic lands
// here, at the contract method, with the witness chain.
func (h *Histogram) Observe(v float64) { // want "alloc-free contract: internal/obs..Histogram..Observe allocates on the steady path .1 always-allocations per call; witness: call to errors.New, via internal/obs..Histogram..Observe -> obshelper.Note -> obsleaf.Tag."
	h.count.Add(1)
	obshelper.Note(v)
}

func (h *Histogram) ObserveSince(start uint64) { h.last.Store(start) }

func (h *Histogram) Now() uint64 { return h.last.Load() }
