// Package allocfree implements the centurylint analyzer that enforces a
// budget of zero on the paths whose BENCH baselines promise exactly
// that: the obs metric primitives (Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Observe/ObserveSince/Now — BENCH_obs.json pins them at 0
// allocs/op) and the tsdb append path (DB.Append → shard.append →
// wal.append, whose 1 alloc/op in BENCH_tsdb.json is pure amortized
// growth). These are the primitives every packet crosses; one
// fmt.Sprintf added to any of them multiplies into the ingest rate.
//
// The contract is always==0 and not unbounded, over the static measure
// of the dataflow allocation-effects pass (DESIGN.md §38). Amortized
// sites — append growth, map inserts — are admitted: geometric growth
// is O(1) per op, and the AllocsPerRun regression tests pin the runtime
// numbers separately. Unlike allocbudget's annotations, the contract
// table lives here, keyed by import-path suffix, so the gate holds even
// if a hot-path annotation is deleted. A genuine exception justifies
// itself at the site with `//lint:allocfree <reason>`.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/dataflow"
	"centuryscale/internal/lint/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name:      "allocfree",
	Directive: "allocfree",
	Doc: "enforce the zero-allocation contracts the BENCH baselines promise: the " +
		"obs metric primitives and the tsdb append path must reach no always-class " +
		"allocation site (amortized growth is admitted), transitively through every " +
		"statically-resolved callee",
	Run: run,
}

// contracts lists the (package suffix, receiver, method) triples under
// the zero-allocation contract, with the baseline that promises it.
var contracts = []struct {
	pkg    string
	recv   string
	method string
	why    string
}{
	{"internal/obs", "Counter", "Inc", "BENCH_obs.json: 0 allocs/op"},
	{"internal/obs", "Counter", "Add", "BENCH_obs.json: 0 allocs/op"},
	{"internal/obs", "Gauge", "Set", "BENCH_obs.json: 0 allocs/op"},
	{"internal/obs", "Gauge", "Add", "BENCH_obs.json: 0 allocs/op"},
	{"internal/obs", "Histogram", "Observe", "BENCH_obs.json: 0 allocs/op"},
	{"internal/obs", "Histogram", "ObserveSince", "BENCH_obs.json: 0 allocs/op"},
	{"internal/obs", "Histogram", "Now", "BENCH_obs.json: 0 allocs/op"},
	{"internal/tsdb", "DB", "Append", "BENCH_tsdb.json: amortized growth only"},
	{"internal/tsdb", "shard", "append", "BENCH_tsdb.json: amortized growth only"},
	{"internal/tsdb", "wal", "append", "BENCH_tsdb.json: amortized growth only"},
}

func run(pass *analysis.Pass) error {
	ix := pass.Summaries
	if ix == nil {
		ix = dataflow.NewIndex()
		ix.Add(dataflow.Summarize(pass.TypesInfo, pass.Files))
		ix.Resolve()
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			why, covered := contractFor(fn)
			if !covered {
				continue
			}
			name := dataflow.Name(fn)
			e, indexed := ix.AllocsOf(name)
			if !indexed {
				continue
			}
			switch {
			case e.Unbounded:
				chain, desc := ix.AllocUnboundedWitness(name)
				pass.Reportf(fd.Name.Pos(),
					"alloc-free contract: %s allocates without bound: %s (via %s) — %s",
					name, desc, strings.Join(chain, " -> "), why)
			case e.Always > 0:
				chain, site := ix.AllocWitness(name)
				pass.Reportf(fd.Name.Pos(),
					"alloc-free contract: %s allocates on the steady path (%s; witness: %s, via %s) — %s",
					name, plural(e.Always), site, strings.Join(chain, " -> "), why)
			}
		}
	}
	return nil
}

func plural(n int) string {
	return fmt.Sprintf("%d always-allocations per call", n)
}

// contractFor returns the baseline note for a method under contract.
func contractFor(fn *types.Func) (string, bool) {
	named := typeutil.ReceiverNamed(fn)
	if named == nil {
		return "", false
	}
	path := typeutil.PkgPath(named.Obj())
	for _, c := range contracts {
		if fn.Name() == c.method && named.Obj().Name() == c.recv && typeutil.HasPathSuffix(path, []string{c.pkg}) {
			return c.why, true
		}
	}
	return "", false
}
