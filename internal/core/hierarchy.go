// Package core wires the substrates into the paper's systems: the
// Figure-1 deployment hierarchy and the §4 fifty-year experiment, run end
// to end inside the discrete-event engine.
package core

import (
	"fmt"
	"math"

	"centuryscale/internal/reliability"
	"centuryscale/internal/rng"
)

// Tier is one level of the Figure-1 deployment hierarchy.
type Tier int

// Hierarchy tiers, bottom to top.
const (
	TierDevice Tier = iota
	TierGateway
	TierBackhaul
	TierCloud
)

var tierNames = map[Tier]string{
	TierDevice:   "devices",
	TierGateway:  "gateways",
	TierBackhaul: "backhaul",
	TierCloud:    "cloud",
}

// String implements fmt.Stringer.
func (t Tier) String() string {
	if n, ok := tierNames[t]; ok {
		return n
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// LifetimeStat summarises a tier's sampled lifetime distribution.
type LifetimeStat struct {
	Count     int
	MeanYears float64
	// CoV is the coefficient of variation (sigma/mean): Figure 1's
	// "lifetime variability" axis.
	CoV      float64
	MinYears float64
	MaxYears float64
}

// TierRow is one row of the hierarchy report.
type TierRow struct {
	Tier Tier
	// Population at this tier.
	Count int
	// RelianceFanIn is how many entities of the tier below rely on one
	// entity at this tier (devices per gateway, gateways per backhaul).
	RelianceFanIn float64
	Lifetimes     LifetimeStat
}

// HierarchyReport quantifies Figure 1: the further up the hierarchy, the
// fewer the entities, the more devices rely on each one, and the longer
// (and less variable) its lifetime must be.
type HierarchyReport struct {
	Rows []TierRow
}

// HierarchyConfig sets the population of each tier.
type HierarchyConfig struct {
	Devices   int
	Gateways  int
	Backhauls int
	Seed      uint64
}

// DefaultHierarchy uses the scale of a municipal deployment: ten thousand
// devices on forty gateways over two backhaul links into one cloud.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{Devices: 10000, Gateways: 40, Backhauls: 2, Seed: 1}
}

func statOf(samples []float64) LifetimeStat {
	if len(samples) == 0 {
		return LifetimeStat{}
	}
	sum, min, max := 0.0, math.Inf(1), math.Inf(-1)
	for _, v := range samples {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(samples))
	varsum := 0.0
	for _, v := range samples {
		varsum += (v - mean) * (v - mean)
	}
	cov := 0.0
	if mean > 0 && len(samples) > 1 {
		cov = math.Sqrt(varsum/float64(len(samples)-1)) / mean
	}
	return LifetimeStat{
		Count: len(samples), MeanYears: mean, CoV: cov,
		MinYears: min, MaxYears: max,
	}
}

// BuildHierarchy samples lifetimes at every tier and assembles the
// Figure-1 report. Device and gateway lifetimes come from their BOMs;
// backhaul lifetime is the structural life of a fiber plant (decades,
// narrow spread); the cloud tier is institutional — bounded by renewable
// 10-year commitments rather than hardware, modelled as indefinitely
// renewable with small variance.
func BuildHierarchy(cfg HierarchyConfig) HierarchyReport {
	if cfg.Devices <= 0 || cfg.Gateways <= 0 || cfg.Backhauls <= 0 {
		panic("core: empty hierarchy config")
	}
	src := rng.New(cfg.Seed)

	devBOM := reliability.HarvestingDeviceBOM()
	devSrc := src.Split("devices")
	devLives := make([]float64, cfg.Devices)
	for i := range devLives {
		devLives[i], _ = devBOM.SampleLifetime(devSrc)
	}

	gwBOM := reliability.GatewayBOM()
	gwSrc := src.Split("gateways")
	gwLives := make([]float64, cfg.Gateways)
	for i := range gwLives {
		gwLives[i], _ = gwBOM.SampleLifetime(gwSrc)
	}

	// Fiber plant structural life: long and comparatively tight (the
	// Barcelona observation: 30-year-old fiber carrying a new IoT
	// network).
	bhSrc := src.Split("backhaul")
	bhDist := reliability.WeibullFromMean(6, 60)
	bhLives := make([]float64, cfg.Backhauls)
	for i := range bhLives {
		bhLives[i] = bhDist.Sample(bhSrc)
	}

	// The cloud endpoint's lifetime is institutional: renewable ~10-year
	// commitments (domain leases, hosting contracts) renewed many times.
	cloudSrc := src.Split("cloud")
	cloudDist := reliability.WeibullFromMean(8, 80)
	cloudLives := []float64{cloudDist.Sample(cloudSrc)}

	return HierarchyReport{Rows: []TierRow{
		{Tier: TierDevice, Count: cfg.Devices, RelianceFanIn: 0, Lifetimes: statOf(devLives)},
		{Tier: TierGateway, Count: cfg.Gateways,
			RelianceFanIn: float64(cfg.Devices) / float64(cfg.Gateways),
			Lifetimes:     statOf(gwLives)},
		{Tier: TierBackhaul, Count: cfg.Backhauls,
			RelianceFanIn: float64(cfg.Gateways) / float64(cfg.Backhauls),
			Lifetimes:     statOf(bhLives)},
		{Tier: TierCloud, Count: 1,
			RelianceFanIn: float64(cfg.Backhauls),
			Lifetimes:     statOf(cloudLives)},
	}}
}

// RelianceAt returns how many devices ultimately rely on one entity at
// the given tier (the Figure-1 "more devices reliant on stability" axis).
func (r HierarchyReport) RelianceAt(t Tier) float64 {
	devices := 0.0
	var count int
	for _, row := range r.Rows {
		if row.Tier == TierDevice {
			devices = float64(row.Count)
		}
		if row.Tier == t {
			count = row.Count
		}
	}
	if count == 0 {
		return 0
	}
	return devices / float64(count)
}
