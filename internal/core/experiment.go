package core

import (
	"fmt"
	"sort"
	"time"

	"centuryscale/internal/backhaul"
	"centuryscale/internal/city"
	"centuryscale/internal/cloud"
	"centuryscale/internal/device"
	"centuryscale/internal/econ"
	"centuryscale/internal/energy"
	"centuryscale/internal/helium"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/radio"
	"centuryscale/internal/reliability"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
	"centuryscale/internal/telemetry"
)

// GatewayDesign selects one of the paper's two §4.2 design points.
type GatewayDesign int

// Gateway designs.
const (
	// OwnedWPAN is the "owned infrastructure" design: self-deployed
	// 802.15.4 gateways on a municipal backhaul, maintained on failure.
	OwnedWPAN GatewayDesign = iota
	// ThirdPartyLoRa is the "(hedged) third-party infrastructure"
	// design: extant LoRa hotspots paid per packet from a prepaid
	// wallet.
	ThirdPartyLoRa
)

// String implements fmt.Stringer.
func (d GatewayDesign) String() string {
	switch d {
	case OwnedWPAN:
		return "owned-802.15.4"
	case ThirdPartyLoRa:
		return "third-party-lora"
	default:
		return fmt.Sprintf("design(%d)", int(d))
	}
}

// ExperimentConfig parameterises one end-to-end run of the 50-year
// experiment.
type ExperimentConfig struct {
	Seed    uint64
	Horizon time.Duration

	// Devices.
	NumDevices     int
	DeviceClass    device.Class
	ReportInterval time.Duration

	Design GatewayDesign

	// OwnedWPAN design.
	NumGateways int
	// MaintainGateways replaces failed gateways after GatewayRepairLag
	// (the paper allows gateway upkeep; only edge devices are
	// untouchable).
	MaintainGateways bool
	GatewayRepairLag time.Duration
	Backhaul         backhaul.Profile

	// ThirdPartyLoRa design.
	Helium helium.NetworkConfig
	// WalletCents is prepaid at deployment *per device*, following the
	// §4.4 recipe ($5 per device covers its 50 years of hourly uplink).
	WalletCents int64
	// DeployOwnedHotspotsOnCollapse enacts the hedge: when third-party
	// coverage is lost, deploy owned hotspots after the repair lag.
	DeployOwnedHotspotsOnCollapse bool

	// City geometry: devices scatter in a disc of this radius around
	// each gateway's coverage area (owned design), meters.
	CellRadiusMeters float64

	// MissLeaseRenewals injects the institutional failure: the domain
	// lease renewals at these indices (0-based) are missed, darkening
	// the endpoint for LeaseLapse until someone notices.
	MissLeaseRenewals []int
	LeaseLapse        time.Duration

	// ReplaceFailedDevices enacts §4.4's living-study rule: the
	// experiment stipulates devices remain untouched, "but if they do
	// fail, we will document, diagnose, and replace them." A failed
	// device is diagnosed and replaced (fresh hardware, fresh address)
	// after DeviceReplaceLag; the event lands in the diary.
	ReplaceFailedDevices bool
	DeviceReplaceLag     time.Duration
}

// DiaryEntry is one line of the experiment's living maintenance diary
// (§4.5): every intervention, dated and attributed.
type DiaryEntry struct {
	At   time.Duration
	What string
}

// DefaultExperiment returns the paper's initial deployment, scaled to
// simulate quickly: a modest number of harvesting transmit-only devices
// reporting every 6 hours for 50 years.
func DefaultExperiment(design GatewayDesign) ExperimentConfig {
	cfg := ExperimentConfig{
		Seed:             1,
		Horizon:          sim.Years(50),
		NumDevices:       40,
		DeviceClass:      device.ClassHarvesting,
		ReportInterval:   6 * time.Hour,
		Design:           design,
		NumGateways:      4,
		MaintainGateways: true,
		GatewayRepairLag: 14 * sim.Day,
		Backhaul:         backhaul.DefaultProfile(backhaul.Fiber, backhaul.Municipal),
		WalletCents:      500, // the $5-per-device wallet
		CellRadiusMeters: 70,  // inside the 0 dBm 2.4 GHz street-level budget
	}
	cfg.Helium = helium.DefaultNetworkConfig()
	cfg.Helium.InitialHotspots = 1200 // metro-area slice of the network
	return cfg
}

// Outcome is the result of one experiment run.
type Outcome struct {
	Config ExperimentConfig

	PacketsSent      uint64
	PacketsDelivered uint64
	PacketsAccepted  uint64 // after endpoint verification + dedup

	DevicesAliveAtEnd  int
	DeviceReplacements int
	GatewayFailures    int
	GatewayReplaced    int

	// Diary is the living maintenance log: every intervention the
	// operators made, in time order.
	Diary []DiaryEntry

	WalletRemaining int64

	WeeklyUptime float64
	LongestGap   time.Duration

	// YearlyAccepted[y] counts packets accepted during simulation year y
	// — the raw series behind the experiment's public uptime chart.
	YearlyAccepted []uint64
	// YearlyAliveDevices[y] counts devices alive at the start of year y.
	YearlyAliveDevices []int

	Ledger econ.Ledger
	Store  *cloud.Store
}

// DeliveryRatio is end-to-end delivered/sent.
func (o *Outcome) DeliveryRatio() float64 {
	if o.PacketsSent == 0 {
		return 0
	}
	return float64(o.PacketsDelivered) / float64(o.PacketsSent)
}

// masterSecret provisions device keys for the whole experiment fleet.
var masterSecret = []byte("centuryscale-experiment-master")

// ownedGateway is a gateway slot in the owned design with its own renewal
// process (gateways are maintainable infrastructure, unlike devices).
type ownedGateway struct {
	pos      city.Point
	aliveTo  time.Duration
	failures int
	replaced int
}

// RunExperiment executes the end-to-end simulation.
func RunExperiment(cfg ExperimentConfig) *Outcome {
	if cfg.NumDevices <= 0 || cfg.Horizon <= 0 || cfg.ReportInterval <= 0 {
		panic("core: incomplete experiment config")
	}
	src := rng.New(cfg.Seed)
	eng := sim.NewEngine()
	out := &Outcome{Config: cfg}
	out.Store = cloud.NewStore(cloud.StaticKeys(masterSecret))
	years := int(sim.ToYears(cfg.Horizon)) + 1
	out.YearlyAccepted = make([]uint64, years)
	out.YearlyAliveDevices = make([]int, years)

	// Institutional failure injection: missed lease renewals darken the
	// endpoint.
	if len(cfg.MissLeaseRenewals) > 0 {
		sched := cloud.DomainLeaseSchedule(cfg.Horizon, sim.Years(10))
		lapse := cfg.LeaseLapse
		if lapse <= 0 {
			lapse = 60 * sim.Day
		}
		for _, idx := range cfg.MissLeaseRenewals {
			if idx >= 0 && idx < len(sched) {
				out.Store.AddLapse(sched[idx], sched[idx]+lapse)
				out.Diary = append(out.Diary, DiaryEntry{
					At:   sched[idx],
					What: "domain lease renewal missed; public endpoint dark",
				})
			}
		}
	}

	// Channel / protocol parameters per design.
	var (
		linkSuccess func(devIdx int, now time.Duration) bool
		chargeOK    func() bool
	)

	devPosSrc := src.Split("positions")
	shadowSrc := src.Split("shadowing")

	switch cfg.Design {
	case OwnedWPAN:
		if cfg.NumGateways <= 0 {
			panic("core: owned design needs gateways")
		}
		ch := radio.Urban24Channel()
		link := radio.Link{TxPowerDBm: 0}
		sens := radio.IEEE802154{}.Sensitivity()
		airtime, err := radio.IEEE802154{}.Airtime(telemetry.PacketSize + lpwan.Overhead)
		if err != nil {
			panic(err)
		}
		load := radio.OfferedLoad(cfg.NumDevices/cfg.NumGateways, airtime, cfg.ReportInterval)
		alohaP := radio.AlohaSuccess(load)

		// Gateways with renewal processes; devices scatter around them.
		gwBOM := reliability.GatewayBOM()
		gwSrc := src.Split("gateways")
		gws := make([]*ownedGateway, cfg.NumGateways)
		for i := range gws {
			life, _ := gwBOM.SampleLifetime(gwSrc)
			gws[i] = &ownedGateway{
				pos:     city.Point{X: float64(i) * 4 * cfg.CellRadiusMeters, Y: 0},
				aliveTo: sim.Years(life),
			}
		}
		// Gateway maintenance: when a gateway dies, schedule its
		// replacement (new sampled lifetime) after the repair lag.
		var maintain func(g *ownedGateway)
		maintain = func(g *ownedGateway) {
			eng.After(g.aliveTo-eng.Now(), func() {
				g.failures++
				out.GatewayFailures++
				out.Diary = append(out.Diary, DiaryEntry{
					At: eng.Now(), What: "gateway failed",
				})
				if !cfg.MaintainGateways {
					return
				}
				eng.After(cfg.GatewayRepairLag, func() {
					life, _ := gwBOM.SampleLifetime(gwSrc)
					g.aliveTo = eng.Now() + sim.Years(life)
					g.replaced++
					out.GatewayReplaced++
					out.Ledger.Add(eng.Now(), "gateway-replace", 15000, "RPi-class gateway + labor")
					out.Diary = append(out.Diary, DiaryEntry{
						At: eng.Now(), What: "gateway replaced; commissioning handoff imported",
					})
					maintain(g)
				})
			})
		}
		for _, g := range gws {
			out.Ledger.Add(0, "gateway-capex", 15000, "initial gateway")
			maintain(g)
		}
		// Backhaul: one link shared by all owned gateways.
		bh := backhaul.New(cfg.Backhaul, cfg.Horizon, src.Split("backhaul"))
		out.Ledger.Add(0, "backhaul-capex", econ.Cents(cfg.Backhaul.CapexCents), "link install")

		// Each device associates with the nearest gateway cell.
		devGW := make([]int, cfg.NumDevices)
		devDist := make([]float64, cfg.NumDevices)
		for i := range devGW {
			devGW[i] = i % cfg.NumGateways
			devDist[i] = devPosSrc.Uniform(10, cfg.CellRadiusMeters)
		}
		linkSuccess = func(devIdx int, now time.Duration) bool {
			g := gws[devGW[devIdx]]
			if now >= g.aliveTo {
				return false
			}
			if !bh.AvailableAt(now) {
				return false
			}
			margin := link.MarginDB(ch, devDist[devIdx], sens)
			p := radio.LinkSuccessProb(margin, ch.ShadowSigmaDB) * alohaP
			return shadowSrc.Bernoulli(p)
		}
		chargeOK = func() bool { return true }

	case ThirdPartyLoRa:
		net := helium.NewNetwork(cfg.Helium, src.Split("helium"))
		wallet := helium.NewWallet(0)
		prepaid := cfg.WalletCents * int64(cfg.NumDevices)
		wallet.Provision(prepaid)
		out.Ledger.Add(0, "data-credits", econ.Cents(prepaid), "prepaid wallet ($5/device recipe)")

		hedgeDeployed := false
		ch := radio.UrbanChannel()
		link := radio.Link{TxPowerDBm: 14}
		cfgLoRa := radio.DefaultLoRa(10)
		sens := cfgLoRa.Sensitivity()
		load := radio.OfferedLoad(cfg.Helium.InitialHotspots/10, cfgLoRa.Airtime(telemetry.PacketSize), cfg.ReportInterval)
		alohaP := radio.AlohaSuccess(load)

		devDist := make([]float64, cfg.NumDevices)
		for i := range devDist {
			devDist[i] = devPosSrc.Uniform(100, 3000)
		}
		linkSuccess = func(devIdx int, now time.Duration) bool {
			if !net.CoverageAt(now, 1, nil) {
				// Coverage collapsed: enact the hedge once, after the
				// repair lag, if configured.
				if cfg.DeployOwnedHotspotsOnCollapse && !hedgeDeployed {
					hedgeDeployed = true
					eng.After(cfg.GatewayRepairLag, func() {
						net.AddOwned(2, eng.Now())
						out.GatewayReplaced += 2
						out.Ledger.Add(eng.Now(), "owned-hotspot", 60000, "hedge: 2 owned hotspots")
						out.Diary = append(out.Diary, DiaryEntry{
							At:   eng.Now(),
							What: "third-party network unusable; deployed 2 owned hotspots (the semi-federation hedge)",
						})
					})
				}
				return false
			}
			margin := link.MarginDB(ch, devDist[devIdx], sens)
			p := radio.LinkSuccessProb(margin, ch.ShadowSigmaDB) * alohaP
			return shadowSrc.Bernoulli(p)
		}
		chargeOK = func() bool { return wallet.Charge(1) == nil }
		defer func() { out.WalletRemaining = wallet.Balance() }()

	default:
		panic(fmt.Sprintf("core: unknown design %d", int(cfg.Design)))
	}

	// Build and install devices. Each slot may see several device
	// generations when §4.4's replace-on-failure rule is enabled.
	devSrc := src.Split("devices")
	alive := make([]*device.Device, cfg.NumDevices)
	var generation int
	var deploy func(idx int)
	deploy = func(idx int) {
		generation++
		id := lpwan.EUIFromUint64(0x0100000000000000 | uint64(generation)<<16 | uint64(idx))
		dcfg := device.Config{
			ID:             id,
			Class:          cfg.DeviceClass,
			Sensor:         telemetry.SensorConcreteEMI,
			ReportInterval: cfg.ReportInterval,
			Key:            telemetry.DeriveKey(masterSecret, id),
			Task:           energy.TaskCost{SenseMicroJoules: 2000, CPUMicroJoules: 3000, TxMicroJoules: 25000},
		}
		switch cfg.DeviceClass {
		case device.ClassHarvesting:
			dcfg.Harvester = energy.CathodicProtection{InitialMicroWatts: 50, DeclinePerCentury: 0.3}
			dcfg.Store = energy.SupercapStore(0.1, 1.8, 5.0, 1)
		case device.ClassBattery:
			dcfg.BatteryMicroJoules = 3.24e10
			dcfg.SleepMicroWatts = 6
		}
		d := device.New(dcfg, devSrc)
		alive[idx] = d
		d.Install(eng, func(now time.Duration, wire []byte) {
			out.PacketsSent++
			if !linkSuccess(idx, now) {
				return
			}
			if !chargeOK() {
				return
			}
			out.PacketsDelivered++
			if err := out.Store.Ingest(now, wire); err == nil {
				out.PacketsAccepted++
				if y := int(sim.ToYears(now)); y < len(out.YearlyAccepted) {
					out.YearlyAccepted[y]++
				}
			}
		})
		if eng.Now() == 0 {
			out.Ledger.Add(0, "device-capex", 5000, "sensor hardware")
		} else {
			out.Ledger.Add(eng.Now(), "device-replace", 7500, "diagnose + replace failed sensor")
		}
		if cfg.ReplaceFailedDevices {
			failAt, cause := d.FailureAt()
			dieTime := eng.Now() + failAt
			if dieTime < cfg.Horizon {
				lag := cfg.DeviceReplaceLag
				if lag <= 0 {
					lag = 30 * sim.Day
				}
				eng.After(failAt+lag, func() {
					out.DeviceReplacements++
					out.Diary = append(out.Diary, DiaryEntry{
						At:   eng.Now(),
						What: fmt.Sprintf("device %v failed (%s); documented, diagnosed, replaced", id, cause),
					})
					deploy(idx)
				})
			}
		}
	}
	for i := 0; i < cfg.NumDevices; i++ {
		deploy(i)
	}
	for y := 0; y < years; y++ {
		yr := y
		eng.After(sim.Years(float64(yr)), func() {
			for _, d := range alive {
				if d != nil && d.Alive(eng.Now()) {
					out.YearlyAliveDevices[yr]++
				}
			}
		})
	}
	eng.After(cfg.Horizon, func() {
		for _, d := range alive {
			if d != nil && d.Alive(cfg.Horizon) {
				out.DevicesAliveAtEnd++
			}
		}
	})

	eng.Run(cfg.Horizon)
	out.WeeklyUptime = out.Store.WeeklyUptime(cfg.Horizon)
	out.LongestGap = out.Store.LongestGap(cfg.Horizon)
	// Lease-lapse entries are written at schedule time, before the run:
	// put the diary in time order for readers.
	sort.Slice(out.Diary, func(i, j int) bool { return out.Diary[i].At < out.Diary[j].At })
	return out
}
