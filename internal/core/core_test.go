package core

import (
	"testing"
	"time"

	"centuryscale/internal/device"
	"centuryscale/internal/sim"
)

func TestHierarchyShape(t *testing.T) {
	// Figure 1's qualitative claims, quantified.
	rep := BuildHierarchy(DefaultHierarchy())
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Population shrinks going up.
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i].Count >= rep.Rows[i-1].Count {
			t.Fatalf("tier %v count %d not below tier %v count %d",
				rep.Rows[i].Tier, rep.Rows[i].Count, rep.Rows[i-1].Tier, rep.Rows[i-1].Count)
		}
	}
	// Ultimate reliance grows going up: each backhaul carries more
	// devices than each gateway, the cloud carries them all.
	if rep.RelianceAt(TierGateway) >= rep.RelianceAt(TierBackhaul) {
		t.Fatal("backhaul must carry more devices than a gateway")
	}
	if rep.RelianceAt(TierBackhaul) >= rep.RelianceAt(TierCloud) {
		t.Fatal("cloud must carry more devices than a backhaul")
	}
	if rep.RelianceAt(TierCloud) != 10000 {
		t.Fatalf("cloud reliance = %v, want all devices", rep.RelianceAt(TierCloud))
	}
	// Lifetime variability shrinks (and mean grows) going up — devices
	// are numerous and individually unreliable; upper tiers must be
	// stable.
	dev := rep.Rows[0].Lifetimes
	bh := rep.Rows[2].Lifetimes
	if bh.MeanYears <= dev.MeanYears {
		t.Fatalf("backhaul mean life %v must exceed device %v", bh.MeanYears, dev.MeanYears)
	}
	if dev.CoV <= 0 {
		t.Fatal("device lifetime spread missing")
	}
}

func TestHierarchyPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty hierarchy did not panic")
		}
	}()
	BuildHierarchy(HierarchyConfig{})
}

func TestTierNames(t *testing.T) {
	if TierDevice.String() != "devices" || TierCloud.String() != "cloud" {
		t.Fatal("tier names wrong")
	}
	if Tier(9).String() != "tier(9)" {
		t.Fatal("unknown tier fallback")
	}
	if OwnedWPAN.String() != "owned-802.15.4" || ThirdPartyLoRa.String() != "third-party-lora" {
		t.Fatal("design names wrong")
	}
}

func shortOwned(seed uint64) ExperimentConfig {
	cfg := DefaultExperiment(OwnedWPAN)
	cfg.Seed = seed
	cfg.Horizon = sim.Years(5)
	cfg.NumDevices = 20
	cfg.ReportInterval = 12 * time.Hour
	return cfg
}

func TestOwnedDesignEndToEnd(t *testing.T) {
	out := RunExperiment(shortOwned(1))
	if out.PacketsSent == 0 {
		t.Fatal("no packets sent")
	}
	if out.PacketsAccepted == 0 {
		t.Fatal("no packets reached the endpoint")
	}
	if r := out.DeliveryRatio(); r < 0.5 || r > 1 {
		t.Fatalf("delivery ratio = %v", r)
	}
	// Over a short 5-year run nearly all harvesting devices survive.
	if out.DevicesAliveAtEnd < 15 {
		t.Fatalf("alive at end = %d of 20", out.DevicesAliveAtEnd)
	}
	if out.WeeklyUptime < 0.95 {
		t.Fatalf("weekly uptime = %v", out.WeeklyUptime)
	}
	if out.Ledger.Total() <= 0 {
		t.Fatal("ledger empty")
	}
}

func TestThirdPartyDesignEndToEnd(t *testing.T) {
	cfg := DefaultExperiment(ThirdPartyLoRa)
	cfg.Horizon = sim.Years(5)
	cfg.NumDevices = 10
	cfg.ReportInterval = 12 * time.Hour
	out := RunExperiment(cfg)
	if out.PacketsAccepted == 0 {
		t.Fatal("no packets accepted")
	}
	if out.WeeklyUptime < 0.9 {
		t.Fatalf("weekly uptime = %v", out.WeeklyUptime)
	}
	// The wallet funded everything and still has credits.
	if out.WalletRemaining <= 0 {
		t.Fatalf("wallet remaining = %d", out.WalletRemaining)
	}
}

func TestWalletExhaustionStopsDelivery(t *testing.T) {
	cfg := DefaultExperiment(ThirdPartyLoRa)
	cfg.Horizon = sim.Years(3)
	cfg.NumDevices = 10
	cfg.ReportInterval = 6 * time.Hour
	cfg.WalletCents = 1 // 1,000 credits for ~43,800 scheduled packets
	out := RunExperiment(cfg)
	if out.WalletRemaining > 2 {
		t.Fatalf("wallet should be drained, has %d", out.WalletRemaining)
	}
	if out.PacketsDelivered >= out.PacketsSent/2 {
		t.Fatalf("delivery should collapse after wallet exhaustion: %d of %d",
			out.PacketsDelivered, out.PacketsSent)
	}
}

func TestNetworkCollapseAndHedge(t *testing.T) {
	base := DefaultExperiment(ThirdPartyLoRa)
	base.Horizon = sim.Years(30)
	base.NumDevices = 10
	base.ReportInterval = sim.Day
	base.Helium.InitialHotspots = 100
	base.Helium.GrowthStopsAfterYears = 2
	base.GatewayRepairLag = 30 * sim.Day

	unhedged := base
	unhedged.DeployOwnedHotspotsOnCollapse = false
	hedged := base
	hedged.DeployOwnedHotspotsOnCollapse = true

	u := RunExperiment(unhedged)
	h := RunExperiment(hedged)
	if h.WeeklyUptime <= u.WeeklyUptime {
		t.Fatalf("hedge must improve uptime: %v vs %v", h.WeeklyUptime, u.WeeklyUptime)
	}
	if u.WeeklyUptime > 0.75 {
		t.Fatalf("collapsed network uptime = %v, expected collapse", u.WeeklyUptime)
	}
	if h.WeeklyUptime < 0.9 {
		t.Fatalf("hedged uptime = %v", h.WeeklyUptime)
	}
	if h.GatewayReplaced == 0 {
		t.Fatal("hedge never deployed owned hotspots")
	}
}

func TestBatteryFleetDiesHarvestingPersists(t *testing.T) {
	// The central comparison at 50 years, small scale.
	mk := func(class device.Class) *Outcome {
		cfg := DefaultExperiment(OwnedWPAN)
		cfg.Horizon = sim.Years(50)
		cfg.NumDevices = 60
		cfg.ReportInterval = 2 * sim.Day
		cfg.DeviceClass = class
		return RunExperiment(cfg)
	}
	batt := mk(device.ClassBattery)
	harv := mk(device.ClassHarvesting)
	if batt.DevicesAliveAtEnd > 1 {
		t.Fatalf("battery devices alive at 50y = %d", batt.DevicesAliveAtEnd)
	}
	if harv.DevicesAliveAtEnd <= batt.DevicesAliveAtEnd {
		t.Fatalf("harvesting devices alive = %d vs battery %d",
			harv.DevicesAliveAtEnd, batt.DevicesAliveAtEnd)
	}
	if harv.WeeklyUptime <= batt.WeeklyUptime {
		t.Fatalf("harvesting uptime %v must beat battery %v", harv.WeeklyUptime, batt.WeeklyUptime)
	}
}

func TestLeaseLapseHurtsUptime(t *testing.T) {
	clean := shortOwned(3)
	clean.Horizon = sim.Years(15)
	lapsed := clean
	lapsed.MissLeaseRenewals = []int{0} // miss the year-10 renewal
	lapsed.LeaseLapse = sim.Years(1)

	c := RunExperiment(clean)
	l := RunExperiment(lapsed)
	if l.WeeklyUptime >= c.WeeklyUptime {
		t.Fatalf("lease lapse must dent uptime: %v vs %v", l.WeeklyUptime, c.WeeklyUptime)
	}
	if l.Store.Stats().LeaseLapsed == 0 {
		t.Fatal("no packets were dropped during the lapse")
	}
}

func TestExperimentDeterministic(t *testing.T) {
	a := RunExperiment(shortOwned(7))
	b := RunExperiment(shortOwned(7))
	if a.PacketsSent != b.PacketsSent || a.PacketsAccepted != b.PacketsAccepted ||
		a.WeeklyUptime != b.WeeklyUptime {
		t.Fatal("same seed diverged")
	}
}

func TestNoMaintenanceGatewaysDecay(t *testing.T) {
	cfg := DefaultExperiment(OwnedWPAN)
	cfg.Horizon = sim.Years(40)
	cfg.NumDevices = 20
	cfg.ReportInterval = 2 * sim.Day
	cfg.MaintainGateways = false
	out := RunExperiment(cfg)
	maintained := cfg
	maintained.MaintainGateways = true
	m := RunExperiment(maintained)
	if out.WeeklyUptime >= m.WeeklyUptime {
		t.Fatalf("unmaintained gateways should sink uptime: %v vs %v",
			out.WeeklyUptime, m.WeeklyUptime)
	}
	if out.GatewayReplaced != 0 {
		t.Fatal("unmaintained run replaced gateways")
	}
}

func BenchmarkExperimentFiveYears(b *testing.B) {
	cfg := shortOwned(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		_ = RunExperiment(cfg)
	}
}

func TestBridgeCoupledScenario(t *testing.T) {
	cfg := DefaultBridge()
	cfg.Seed = 5
	out := RunBridge(cfg)
	if out.PacketsAccepted == 0 {
		t.Fatal("no packets accepted")
	}
	// Reported health tracks ground truth: ~1.0 mid-life, collapsing at
	// end of service life.
	mid := out.HealthAtYear[20]
	if mid < 0.9 || mid > 1.1 {
		t.Fatalf("reported health at year 20 = %v", mid)
	}
	eolYear := int(cfg.Structure.ServiceLifeYears())
	if eol := out.HealthAtYear[eolYear]; eol > 0.35 && eol != -1 {
		t.Fatalf("reported health at EOL year = %v, want collapsed", eol)
	}
	// The pre-initiation passive regime starves the 12-hourly cadence
	// (5 µW supports ~2-hourly at best after leakage) — skips happen,
	// but weekly uptime holds because the fleet is staggered by energy.
	if out.StarvedSkips == 0 {
		t.Fatal("no energy-starved skips in the passive regime")
	}
	if out.WeeklyUptime < 0.95 {
		t.Fatalf("weekly uptime = %v", out.WeeklyUptime)
	}
}

func TestBridgeDeterministic(t *testing.T) {
	cfg := DefaultBridge()
	cfg.Sensors = 4
	cfg.Horizon = sim.Years(5)
	a := RunBridge(cfg)
	b := RunBridge(cfg)
	if a.PacketsAccepted != b.PacketsAccepted || a.WeeklyUptime != b.WeeklyUptime {
		t.Fatal("same seed diverged")
	}
}

func TestBridgePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty bridge config did not panic")
		}
	}()
	RunBridge(BridgeConfig{})
}

func TestDeviceReplacementLivingStudy(t *testing.T) {
	// §4.4: devices stay untouched, but failures get documented,
	// diagnosed, and replaced. With replacement on, the fleet holds its
	// strength over 50 years; the diary records each intervention.
	cfg := DefaultExperiment(OwnedWPAN)
	cfg.Horizon = sim.Years(50)
	cfg.NumDevices = 20
	cfg.ReportInterval = 2 * sim.Day
	cfg.ReplaceFailedDevices = true
	cfg.DeviceReplaceLag = 60 * sim.Day
	out := RunExperiment(cfg)

	if out.DeviceReplacements == 0 {
		t.Fatal("no device replacements in 50 years")
	}
	// The replaced fleet ends near full strength.
	if out.DevicesAliveAtEnd < 15 {
		t.Fatalf("alive at end = %d of 20 with replacement on", out.DevicesAliveAtEnd)
	}
	// Diary records the interventions in order.
	replaceEntries := 0
	var last time.Duration
	for _, e := range out.Diary {
		if e.At < last {
			t.Fatal("diary out of order")
		}
		last = e.At
		if len(e.What) == 0 {
			t.Fatal("empty diary entry")
		}
		if e.What[0] == 'd' { // device entries
			replaceEntries++
		}
	}
	if replaceEntries != out.DeviceReplacements {
		t.Fatalf("diary device entries = %d, replacements = %d",
			replaceEntries, out.DeviceReplacements)
	}
	// Replacements cost money.
	if out.Ledger.ByCategory()["device-replace"] == 0 {
		t.Fatal("no replacement costs in the ledger")
	}

	// Contrast: the untouched fleet decays.
	untouched := cfg
	untouched.ReplaceFailedDevices = false
	u := RunExperiment(untouched)
	if u.DevicesAliveAtEnd >= out.DevicesAliveAtEnd {
		t.Fatalf("untouched fleet (%d alive) should trail replaced fleet (%d)",
			u.DevicesAliveAtEnd, out.DevicesAliveAtEnd)
	}
}

func TestDiaryEmptyWithoutInterventions(t *testing.T) {
	cfg := shortOwned(4)
	cfg.Horizon = sim.Years(2) // too short for gateway failures, usually
	out := RunExperiment(cfg)
	for _, e := range out.Diary {
		// Whatever is in the diary must be a real intervention type.
		switch {
		case len(e.What) >= 7 && e.What[:7] == "gateway":
		case len(e.What) >= 6 && e.What[:6] == "device":
		case len(e.What) >= 6 && e.What[:6] == "domain":
		case len(e.What) >= 5 && e.What[:5] == "third":
		default:
			t.Fatalf("unrecognised diary entry %q", e.What)
		}
	}
}
