package core

import (
	"time"

	"centuryscale/internal/cloud"
	"centuryscale/internal/concrete"
	"centuryscale/internal/device"
	"centuryscale/internal/energy"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
	"centuryscale/internal/telemetry"
)

// The fully-coupled scenario of §1/§4.1: sensors cast into a structure
// report its health and are powered by its corrosion. Unlike the generic
// experiment, here the harvester and the sensed value are both functions
// of the same physical state, so the energy budget and the data stream
// co-evolve with the structure.

// structureHarvester adapts a concrete.Structure's corrosion cell to the
// energy.Harvester interface.
type structureHarvester struct {
	s            concrete.Structure
	electrodeCM2 float64
	cellVolts    float64
}

// PowerAt implements energy.Harvester.
func (h structureHarvester) PowerAt(t time.Duration) float64 {
	return h.s.HarvestMicroWatts(h.electrodeCM2, h.cellVolts, t)
}

// MeanPower implements energy.Harvester: the average of passive and
// active regimes weighted by a 50-year horizon.
func (h structureHarvester) MeanPower() float64 {
	init := h.s.InitiationYears()
	horizon := 50.0
	if init >= horizon {
		return h.PowerAt(0)
	}
	passive := h.PowerAt(0)
	active := h.PowerAt(sim.Years(init + 1))
	return (passive*init + active*(horizon-init)) / horizon
}

// BridgeConfig parameterises the coupled scenario.
type BridgeConfig struct {
	Seed      uint64
	Structure concrete.Structure
	// Sensors embedded in the structure.
	Sensors        int
	ReportInterval time.Duration
	// Horizon defaults to the structure's service life plus five years.
	Horizon time.Duration
}

// DefaultBridge returns the paper's initial deployment: a handful of
// sensors cast into one bridge deck.
func DefaultBridge() BridgeConfig {
	return BridgeConfig{
		Seed:           1,
		Structure:      concrete.Bridge(),
		Sensors:        12,
		ReportInterval: 2 * time.Hour,
	}
}

// BridgeOutcome reports the coupled run.
type BridgeOutcome struct {
	Config            BridgeConfig
	Horizon           time.Duration
	PacketsAccepted   uint64
	WeeklyUptime      float64
	SensorsAliveAtEOL int
	// HealthAtYear[y] is the mean reported health index during year y
	// (NaN-free: years with no data hold -1).
	HealthAtYear []float64
	// StarvedSkips counts reports skipped for lack of harvested energy
	// (concentrated in the pre-initiation passive regime).
	StarvedSkips uint64
}

// RunBridge executes the coupled scenario: every sensor harvests from and
// reports on the same structure; the endpoint's accepted values are then
// compared against ground truth year by year.
func RunBridge(cfg BridgeConfig) *BridgeOutcome {
	if cfg.Sensors <= 0 || cfg.ReportInterval <= 0 {
		panic("core: incomplete bridge config")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = sim.Years(cfg.Structure.ServiceLifeYears() + 5)
	}
	src := rng.New(cfg.Seed)
	eng := sim.NewEngine()
	store := cloud.NewStore(cloud.StaticKeys(masterSecret))
	out := &BridgeOutcome{Config: cfg, Horizon: cfg.Horizon}

	years := int(sim.ToYears(cfg.Horizon)) + 1
	sumByYear := make([]float64, years)
	cntByYear := make([]int, years)

	devSrc := src.Split("devices")
	noise := src.Split("sensor-noise")
	harv := structureHarvester{s: cfg.Structure, electrodeCM2: 100, cellVolts: 0.5}

	devices := make([]*device.Device, cfg.Sensors)
	for i := 0; i < cfg.Sensors; i++ {
		id := lpwan.EUIFromUint64(0x0B00000000000000 | uint64(i))
		dcfg := device.Config{
			ID:             id,
			Class:          device.ClassHarvesting,
			Sensor:         telemetry.SensorConcreteEMI,
			ReportInterval: cfg.ReportInterval,
			Key:            telemetry.DeriveKey(masterSecret, id),
			Harvester:      harv,
			Store:          energy.SupercapStore(0.1, 1.8, 5.0, 1),
			Task:           energy.TaskCost{SenseMicroJoules: 2000, CPUMicroJoules: 3000, TxMicroJoules: 25000},
			ReadSensor: func(now time.Duration) float32 {
				// EMI index: ground truth plus small instrument noise.
				return float32(cfg.Structure.HealthIndex(now) * noise.Uniform(0.97, 1.03))
			},
		}
		d := device.New(dcfg, devSrc)
		devices[i] = d
		d.Install(eng, func(now time.Duration, wire []byte) {
			if err := store.Ingest(now, wire); err != nil {
				return
			}
			out.PacketsAccepted++
			p, err := telemetry.Verify(wire, telemetry.DeriveKey(masterSecret, id))
			if err != nil {
				return
			}
			if y := int(sim.ToYears(now)); y < years {
				sumByYear[y] += float64(p.Value)
				cntByYear[y]++
			}
		})
	}

	eng.Run(cfg.Horizon)

	eol := sim.Years(cfg.Structure.ServiceLifeYears())
	for _, d := range devices {
		if d.Alive(eol) {
			out.SensorsAliveAtEOL++
		}
		out.StarvedSkips += d.Stats().SkippedEnergy
	}
	out.WeeklyUptime = store.WeeklyUptime(cfg.Horizon)
	out.HealthAtYear = make([]float64, years)
	for y := range out.HealthAtYear {
		if cntByYear[y] == 0 {
			out.HealthAtYear[y] = -1
			continue
		}
		out.HealthAtYear[y] = sumByYear[y] / float64(cntByYear[y])
	}
	return out
}
