package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"centuryscale/internal/sim"
)

func TestConstantHarvester(t *testing.T) {
	c := Constant{MicroWatts: 50}
	if c.PowerAt(0) != 50 || c.PowerAt(sim.Years(40)) != 50 {
		t.Fatal("constant harvester must not vary")
	}
	if c.MeanPower() != 50 {
		t.Fatal("constant mean != level")
	}
}

func TestCathodicProtectionDecline(t *testing.T) {
	cp := CathodicProtection{InitialMicroWatts: 100, DeclinePerCentury: 0.3}
	if got := cp.PowerAt(0); got != 100 {
		t.Fatalf("initial power %v", got)
	}
	at50 := cp.PowerAt(sim.Years(50))
	if math.Abs(at50-85) > 0.5 {
		t.Fatalf("power at 50y = %v, want ~85 (15%% decline)", at50)
	}
	at100 := cp.PowerAt(sim.Years(100))
	if math.Abs(at100-70) > 0.5 {
		t.Fatalf("power at 100y = %v, want ~70", at100)
	}
	// Never negative even at absurd horizons.
	if cp.PowerAt(sim.Years(1000)) < 0 {
		t.Fatal("power went negative")
	}
}

func TestSolarDiurnal(t *testing.T) {
	s := Solar{PeakMicroWatts: 1000}
	if got := s.PowerAt(0); got != 0 {
		t.Fatalf("midnight power = %v, want 0", got)
	}
	noon := s.PowerAt(12 * time.Hour)
	if math.Abs(noon-1000) > 1 {
		t.Fatalf("noon power = %v, want ~1000", noon)
	}
	if s.PowerAt(3*time.Hour) != 0 {
		t.Fatal("3am power should be 0")
	}
	morning := s.PowerAt(9 * time.Hour)
	if morning <= 0 || morning >= noon {
		t.Fatalf("9am power %v should be between 0 and noon %v", morning, noon)
	}
}

func TestSolarNeverNegative(t *testing.T) {
	s := Solar{PeakMicroWatts: 500, SeasonalSwing: 0.4, DerateAfterYears: 25, DerateFloor: 0.7}
	if err := quick.Check(func(hours uint32) bool {
		return s.PowerAt(time.Duration(hours%876000)*time.Hour) >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolarDerating(t *testing.T) {
	s := Solar{PeakMicroWatts: 1000, DerateAfterYears: 25, DerateFloor: 0.7}
	// Align aged probes to local noon: whole days since epoch + 12h.
	noonAfter := func(d time.Duration) time.Duration {
		days := time.Duration(d / sim.Day)
		return days*sim.Day + 12*time.Hour
	}
	fresh := s.PowerAt(12 * time.Hour)
	aged := s.PowerAt(noonAfter(sim.Years(25)))
	ratio := aged / fresh
	if math.Abs(ratio-0.7) > 0.02 {
		t.Fatalf("derate ratio = %v, want ~0.7", ratio)
	}
	// Derating saturates at the floor.
	older := s.PowerAt(noonAfter(sim.Years(60)))
	if older < aged*0.95 {
		t.Fatalf("derating passed the floor: %v < %v", older, aged)
	}
}

func TestSolarMeanPower(t *testing.T) {
	// Numerical average over a year should match MeanPower.
	s := Solar{PeakMicroWatts: 1000}
	sum := 0.0
	n := 0
	for ti := time.Duration(0); ti < sim.Years(1); ti += 10 * time.Minute {
		sum += s.PowerAt(ti)
		n++
	}
	got := sum / float64(n)
	want := s.MeanPower()
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("numeric mean %v vs MeanPower %v", got, want)
	}
}

func TestThermalTwoLobes(t *testing.T) {
	th := Thermal{PeakMicroWatts: 100}
	if p := th.PowerAt(6 * time.Hour); math.Abs(p-100) > 1 {
		t.Fatalf("6am thermal = %v, want ~peak", p)
	}
	if p := th.PowerAt(12 * time.Hour); p > 1 {
		t.Fatalf("noon thermal = %v, want ~0 (no gradient)", p)
	}
	if p := th.PowerAt(18 * time.Hour); math.Abs(p-100) > 1 {
		t.Fatalf("6pm thermal = %v, want ~peak", p)
	}
}

func TestCompositeSums(t *testing.T) {
	c := Composite{Constant{10}, Constant{15}}
	if c.PowerAt(0) != 25 || c.MeanPower() != 25 {
		t.Fatal("composite must sum members")
	}
}

func TestStoreIntegrate(t *testing.T) {
	s := NewStore(1000, 0)
	s.Integrate(10, 10*time.Second) // 100 µJ
	if math.Abs(s.Stored()-100) > 1e-9 {
		t.Fatalf("stored = %v, want 100", s.Stored())
	}
	over := s.Integrate(100, 20*time.Second) // +2000 µJ -> clamp
	if s.Stored() != 1000 {
		t.Fatalf("stored = %v, want capacity 1000", s.Stored())
	}
	if math.Abs(over-1100) > 1e-9 {
		t.Fatalf("overflow = %v, want 1100", over)
	}
}

func TestStoreLeakage(t *testing.T) {
	s := NewStore(1000, 5)
	s.Integrate(105, 10*time.Second) // net 100/s * 10 = 1000 -> full
	if s.Stored() != 1000 {
		t.Fatalf("stored = %v", s.Stored())
	}
	s.Integrate(0, 100*time.Second) // leak 500
	if math.Abs(s.Stored()-500) > 1e-9 {
		t.Fatalf("after leak stored = %v, want 500", s.Stored())
	}
	s.Integrate(0, time.Hour) // leaks past empty: clamp at 0
	if s.Stored() != 0 {
		t.Fatalf("stored went negative: %v", s.Stored())
	}
}

func TestStoreDraw(t *testing.T) {
	s := NewStore(1000, 0)
	s.Integrate(100, 5*time.Second)
	if !s.TryDraw(300) {
		t.Fatal("draw of 300 from 500 failed")
	}
	if math.Abs(s.Stored()-200) > 1e-9 {
		t.Fatalf("stored = %v, want 200", s.Stored())
	}
	if s.TryDraw(300) {
		t.Fatal("draw of 300 from 200 succeeded")
	}
	if math.Abs(s.Stored()-200) > 1e-9 {
		t.Fatal("failed draw must not change the store")
	}
}

func TestStoreDrawNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative draw did not panic")
		}
	}()
	NewStore(10, 0).TryDraw(-1)
}

func TestSupercapSizing(t *testing.T) {
	// 0.47F between 1.8V and 5.0V: E = 0.235*(25-3.24) J = 5.1136 J.
	s := SupercapStore(0.47, 1.8, 5.0, 0)
	want := 0.47 / 2 * (25 - 3.24) * 1e6
	if math.Abs(s.CapacityMicroJoules-want) > 1 {
		t.Fatalf("capacity = %v µJ, want %v", s.CapacityMicroJoules, want)
	}
}

func TestStoreFraction(t *testing.T) {
	s := NewStore(200, 0)
	s.Integrate(10, 10*time.Second)
	if f := s.Fraction(); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("fraction = %v, want 0.5", f)
	}
}

func TestTaskCostTotal(t *testing.T) {
	tc := TaskCost{SenseMicroJoules: 10, CPUMicroJoules: 20, TxMicroJoules: 70}
	if tc.Total() != 100 {
		t.Fatalf("total = %v", tc.Total())
	}
}

func TestSustainableInterval(t *testing.T) {
	// 100 µW harvest, 0 leak, 360,000 µJ task -> 3600 s interval.
	b := Budget{
		Harvester: Constant{100},
		Store:     NewStore(1e6, 0),
		Task:      TaskCost{TxMicroJoules: 360000},
	}
	iv, ok := b.SustainableInterval()
	if !ok {
		t.Fatal("sustainable budget reported unsustainable")
	}
	if math.Abs(iv.Seconds()-3600) > 1 {
		t.Fatalf("interval = %v, want ~1h", iv)
	}
}

func TestUnsustainableBudget(t *testing.T) {
	b := Budget{
		Harvester: Constant{1},
		Store:     NewStore(1e6, 5), // leakage exceeds harvest
		Task:      TaskCost{TxMicroJoules: 100},
	}
	if _, ok := b.SustainableInterval(); ok {
		t.Fatal("leak-dominated budget reported sustainable")
	}
	if _, ok := b.TimeToFirstTask(); ok {
		t.Fatal("leak-dominated budget reported reachable first task")
	}
}

func TestTimeToFirstTask(t *testing.T) {
	b := Budget{
		Harvester: Constant{10},
		Store:     NewStore(10000, 0),
		Task:      TaskCost{TxMicroJoules: 1000},
	}
	d, ok := b.TimeToFirstTask()
	if !ok || math.Abs(d.Seconds()-100) > 1 {
		t.Fatalf("time to first task = %v ok=%v, want 100s", d, ok)
	}
}

func TestTaskBiggerThanStore(t *testing.T) {
	b := Budget{
		Harvester: Constant{10},
		Store:     NewStore(100, 0),
		Task:      TaskCost{TxMicroJoules: 1000},
	}
	if _, ok := b.TimeToFirstTask(); ok {
		t.Fatal("task larger than the store must be unreachable")
	}
}

func TestHourlyPacketOnCorrosionBudget(t *testing.T) {
	// The paper's headline device: hourly 24-byte packet from a rebar
	// corrosion cell. With a ~50 µW trickle and a ~30 mJ task the cadence
	// supports an hourly uplink comfortably.
	b := Budget{
		Harvester: CathodicProtection{InitialMicroWatts: 50, DeclinePerCentury: 0.3},
		Store:     SupercapStore(0.1, 1.8, 5.0, 1),
		Task:      TaskCost{SenseMicroJoules: 2000, CPUMicroJoules: 3000, TxMicroJoules: 25000},
	}
	iv, ok := b.SustainableInterval()
	if !ok {
		t.Fatal("corrosion budget unsustainable")
	}
	if iv > time.Hour {
		t.Fatalf("sustainable interval %v exceeds the paper's hourly cadence", iv)
	}
}

func BenchmarkIntegrateDay(b *testing.B) {
	s := Solar{PeakMicroWatts: 500}
	st := NewStore(5e6, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for ti := time.Duration(0); ti < sim.Day; ti += time.Minute {
			st.Integrate(s.PowerAt(ti), time.Minute)
		}
	}
}

func TestVibrationFollowsTraffic(t *testing.T) {
	v := Vibration{PeakMicroWatts: 200}
	rush := v.PowerAt(8 * time.Hour)
	night := v.PowerAt(3 * time.Hour)
	if rush < 190 || rush > 200 {
		t.Fatalf("rush-hour power = %v, want ~peak", rush)
	}
	if night > 10 {
		t.Fatalf("3am power = %v, want near zero", night)
	}
	if rush < 20*night {
		t.Fatalf("rush/night ratio too small: %v / %v", rush, night)
	}
}

func TestVibrationInterpolatesSmoothly(t *testing.T) {
	v := Vibration{PeakMicroWatts: 100}
	// No discontinuities: adjacent 10-minute samples differ by a small step.
	prev := v.PowerAt(0)
	for ti := 10 * time.Minute; ti <= 48*time.Hour; ti += 10 * time.Minute {
		cur := v.PowerAt(ti)
		if diff := math.Abs(cur - prev); diff > 12 {
			t.Fatalf("jump of %v at %v", diff, ti)
		}
		prev = cur
	}
}

func TestVibrationMeanPower(t *testing.T) {
	v := Vibration{PeakMicroWatts: 100}
	sum := 0.0
	n := 0
	for ti := time.Duration(0); ti < 24*time.Hour; ti += time.Minute {
		sum += v.PowerAt(ti)
		n++
	}
	got := sum / float64(n)
	want := v.MeanPower()
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("numeric mean %v vs MeanPower %v", got, want)
	}
}

func TestVibrationNeverNegative(t *testing.T) {
	v := Vibration{PeakMicroWatts: 100}
	for ti := time.Duration(0); ti < 3*sim.Day; ti += 7 * time.Minute {
		if v.PowerAt(ti) < 0 {
			t.Fatalf("negative power at %v", ti)
		}
	}
}
