// Package energy models energy harvesting, storage, and the intermittent
// power budget of transmit-only edge devices.
//
// The paper's device design point (§4.1) is an energy-harvesting,
// batteryless sensor: it trickle-charges a capacitor from an ambient
// source — the corrosion current of rebar embedded in concrete (an
// "ambient battery", Jagtap & Pannuto), a small PV cell, a thermal
// gradient — and fires a burst task (sense + transmit) whenever enough
// energy has accumulated. This package provides the harvester source
// models, a supercapacitor store with leakage, and the budget arithmetic
// that turns harvested power into an achievable transmission cadence.
//
// Units: power in microwatts (µW), energy in microjoules (µJ), time as
// time.Duration of virtual simulation time.
package energy

import (
	"fmt"
	"math"
	"time"

	"centuryscale/internal/sim"
)

// Harvester produces environmental power as a function of virtual time.
type Harvester interface {
	// PowerAt returns the instantaneous harvest power in µW at virtual
	// time t (offset from simulation epoch).
	PowerAt(t time.Duration) float64
	// MeanPower returns the long-run average power in µW, used for
	// budget planning.
	MeanPower() float64
}

// Constant is a steady harvester, the idealised "ambient battery".
type Constant struct {
	MicroWatts float64
}

// PowerAt implements Harvester.
func (c Constant) PowerAt(time.Duration) float64 { return c.MicroWatts }

// MeanPower implements Harvester.
func (c Constant) MeanPower() float64 { return c.MicroWatts }

// CathodicProtection models harvesting from the impressed current of a
// cathodic-protection system or rebar corrosion cell: nearly constant, with
// a very slow multi-decade output decline as electrodes passivate. The
// paper cites this as a source that lasts literally as long as the
// structure does.
type CathodicProtection struct {
	// InitialMicroWatts is the output at deployment.
	InitialMicroWatts float64
	// DeclinePerCentury is the fraction of output lost per 100 years
	// (e.g. 0.3 = 30% decline after a century). Linear in time.
	DeclinePerCentury float64
}

// PowerAt implements Harvester.
func (c CathodicProtection) PowerAt(t time.Duration) float64 {
	frac := 1 - c.DeclinePerCentury*(sim.ToYears(t)/100)
	if frac < 0 {
		frac = 0
	}
	return c.InitialMicroWatts * frac
}

// MeanPower implements Harvester: the 50-year average.
func (c CathodicProtection) MeanPower() float64 {
	return (c.PowerAt(0) + c.PowerAt(sim.Years(50))) / 2
}

// Solar models a small photovoltaic harvester with diurnal and seasonal
// cycles. Output is zero at night, sinusoidal during the day, and scaled by
// a seasonal factor (±SeasonalSwing around 1 across the year).
type Solar struct {
	// PeakMicroWatts is the noon output at the equinox.
	PeakMicroWatts float64
	// SeasonalSwing in [0,1): fractional winter/summer modulation.
	SeasonalSwing float64
	// DerateAfterYears models encapsulant browning: output is linearly
	// derated to DerateFloor over this many years (0 disables).
	DerateAfterYears float64
	// DerateFloor is the fraction of peak remaining after full derating.
	DerateFloor float64
}

// PowerAt implements Harvester.
func (s Solar) PowerAt(t time.Duration) float64 {
	dayFrac := math.Mod(float64(t)/float64(sim.Day), 1)
	if dayFrac < 0.25 || dayFrac > 0.75 {
		return 0 // night: 6pm-6am
	}
	// Half-sine across 6am..6pm.
	diurnal := math.Sin((dayFrac - 0.25) / 0.5 * math.Pi)
	yearFrac := math.Mod(sim.ToYears(t), 1)
	seasonal := 1 + s.SeasonalSwing*math.Sin(2*math.Pi*yearFrac)
	derate := 1.0
	if s.DerateAfterYears > 0 {
		progress := sim.ToYears(t) / s.DerateAfterYears
		if progress > 1 {
			progress = 1
		}
		derate = 1 - (1-s.DerateFloor)*progress
	}
	return s.PeakMicroWatts * diurnal * seasonal * derate
}

// MeanPower implements Harvester: average of the diurnal half-sine over a
// full day (peak * (2/pi) * 0.5), ignoring derating.
func (s Solar) MeanPower() float64 {
	return s.PeakMicroWatts * (2 / math.Pi) * 0.5
}

// Thermal models a thermoelectric harvester on a diurnal temperature
// gradient: strongest at dawn and dusk when the structure and air diverge.
type Thermal struct {
	PeakMicroWatts float64
}

// PowerAt implements Harvester.
func (th Thermal) PowerAt(t time.Duration) float64 {
	dayFrac := math.Mod(float64(t)/float64(sim.Day), 1)
	// Two lobes per day; |sin(2pi x)| has maxima at 0.25 and 0.75.
	return th.PeakMicroWatts * math.Abs(math.Sin(2*math.Pi*dayFrac))
}

// MeanPower implements Harvester: mean of |sin| is 2/pi.
func (th Thermal) MeanPower() float64 { return th.PeakMicroWatts * 2 / math.Pi }

// Vibration models a piezoelectric harvester coupled to traffic-induced
// structural vibration: output follows the daily traffic curve — near
// zero in the small hours, strong through the working day with rush-hour
// peaks. This is the harvester for sensors on bridges and roadways whose
// energy source *is* the thing they monitor.
type Vibration struct {
	// PeakMicroWatts is the rush-hour output.
	PeakMicroWatts float64
}

// trafficShape is the normalised hourly traffic-intensity curve used by
// the vibration harvester (peaks at 8:00 and 17:00).
var trafficShape = [24]float64{
	0.05, 0.03, 0.02, 0.02, 0.05, 0.15, 0.45, 0.85,
	1.00, 0.75, 0.60, 0.60, 0.65, 0.65, 0.65, 0.75,
	0.90, 1.00, 0.90, 0.65, 0.45, 0.30, 0.18, 0.10,
}

// PowerAt implements Harvester, interpolating linearly between hours.
func (v Vibration) PowerAt(t time.Duration) float64 {
	dayHours := math.Mod(float64(t)/float64(time.Hour), 24)
	if dayHours < 0 {
		dayHours += 24
	}
	lo := int(dayHours) % 24
	hi := (lo + 1) % 24
	frac := dayHours - math.Floor(dayHours)
	shape := trafficShape[lo]*(1-frac) + trafficShape[hi]*frac
	return v.PeakMicroWatts * shape
}

// MeanPower implements Harvester: the average of the traffic curve.
func (v Vibration) MeanPower() float64 {
	sum := 0.0
	for _, s := range trafficShape {
		sum += s
	}
	return v.PeakMicroWatts * sum / 24
}

// Composite sums several harvesters (e.g. solar + thermal backup).
type Composite []Harvester

// PowerAt implements Harvester.
func (cs Composite) PowerAt(t time.Duration) float64 {
	sum := 0.0
	for _, h := range cs {
		sum += h.PowerAt(t)
	}
	return sum
}

// MeanPower implements Harvester.
func (cs Composite) MeanPower() float64 {
	sum := 0.0
	for _, h := range cs {
		sum += h.MeanPower()
	}
	return sum
}

// Store is an energy buffer (supercapacitor) with self-discharge.
type Store struct {
	// CapacityMicroJoules is the usable energy between the minimum
	// operating voltage and the maximum rated voltage.
	CapacityMicroJoules float64
	// LeakageMicroWatts is the constant self-discharge draw.
	LeakageMicroWatts float64

	stored float64
}

// NewStore returns an empty store. Capacity must be positive.
func NewStore(capacityMicroJoules, leakageMicroWatts float64) *Store {
	if capacityMicroJoules <= 0 {
		panic(fmt.Sprintf("energy: non-positive store capacity %v", capacityMicroJoules))
	}
	return &Store{
		CapacityMicroJoules: capacityMicroJoules,
		LeakageMicroWatts:   leakageMicroWatts,
	}
}

// SupercapStore sizes a store from a capacitance in farads and a voltage
// window [vmin, vmax]: E = C/2 (vmax² − vmin²), in µJ.
func SupercapStore(farads, vmin, vmax, leakageMicroWatts float64) *Store {
	usable := farads / 2 * (vmax*vmax - vmin*vmin) * 1e6
	return NewStore(usable, leakageMicroWatts)
}

// Stored returns the currently buffered energy in µJ.
func (s *Store) Stored() float64 { return s.stored }

// Fraction returns the state of charge in [0, 1].
func (s *Store) Fraction() float64 { return s.stored / s.CapacityMicroJoules }

// Integrate advances the store by dt under harvest power harvestMicroWatts:
// it adds harvested energy, subtracts leakage, and clamps to [0, capacity].
// It returns the energy (µJ) that overflowed (was harvested but could not
// be stored), which budget analyses use to quantify wasted harvest.
func (s *Store) Integrate(harvestMicroWatts float64, dt time.Duration) (overflow float64) {
	seconds := dt.Seconds()
	delta := (harvestMicroWatts - s.LeakageMicroWatts) * seconds
	s.stored += delta
	if s.stored > s.CapacityMicroJoules {
		overflow = s.stored - s.CapacityMicroJoules
		s.stored = s.CapacityMicroJoules
	}
	if s.stored < 0 {
		s.stored = 0
	}
	return overflow
}

// TryDraw removes amount µJ if available, reporting whether the draw
// succeeded. Draws are atomic: an insufficient store is left untouched.
func (s *Store) TryDraw(amount float64) bool {
	if amount < 0 {
		panic("energy: negative draw")
	}
	if s.stored < amount {
		return false
	}
	s.stored -= amount
	return true
}

// TaskCost is the energy bill for one duty cycle of a transmit-only
// sensor.
type TaskCost struct {
	SenseMicroJoules float64 // sensor excitation + ADC
	CPUMicroJoules   float64 // wake, pack, sign
	TxMicroJoules    float64 // radio airtime at TX power
}

// Total returns the full per-task energy in µJ.
func (tc TaskCost) Total() float64 {
	return tc.SenseMicroJoules + tc.CPUMicroJoules + tc.TxMicroJoules
}

// Budget answers planning questions about a harvester/store/task triple.
type Budget struct {
	Harvester Harvester
	Store     *Store
	Task      TaskCost
}

// SustainableInterval returns the shortest steady transmission interval the
// mean harvest power can sustain after leakage, or ok=false if the
// harvester cannot even cover leakage.
func (b Budget) SustainableInterval() (time.Duration, bool) {
	net := b.Harvester.MeanPower() - b.Store.LeakageMicroWatts
	if net <= 0 {
		return 0, false
	}
	seconds := b.Task.Total() / net
	return time.Duration(seconds * float64(time.Second)), true
}

// TimeToFirstTask simulates charging from empty under mean power and
// returns how long until the store holds one task's worth of energy, or
// ok=false if it never will.
func (b Budget) TimeToFirstTask() (time.Duration, bool) {
	net := b.Harvester.MeanPower() - b.Store.LeakageMicroWatts
	if net <= 0 {
		return 0, false
	}
	need := b.Task.Total()
	if need > b.Store.CapacityMicroJoules {
		return 0, false // store can never hold enough for one task
	}
	seconds := need / net
	return time.Duration(seconds * float64(time.Second)), true
}
