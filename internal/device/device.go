// Package device implements the edge-device runtime: the paper's
// transmit-only sensor (§4.1), modelled as a state machine driven by the
// discrete-event engine.
//
// Two device classes carry the paper's central comparison. A battery
// device owns a finite energy reserve plus the battery's calendar wear-out;
// it is what today's 2-7-year deployments field (§2). A harvesting device
// owns no battery: it buffers an ambient trickle in a capacitor and fires
// whenever a full task's energy has accumulated, so its life is bounded
// only by its electronics (§1, §4). Note the deliberate asymmetry the paper
// points out: removing the battery removes both the dominant wear-out
// component and the implicit lifetime.
//
// A device never receives anything — no ACKs, no reconfiguration, no key
// rotation. Its entire interface to the world is the TransmitFunc the
// scenario wires in, which represents RF emission; delivery is the
// channel's and gateways' problem.
package device

import (
	"fmt"
	"time"

	"centuryscale/internal/energy"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/reliability"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
	"centuryscale/internal/telemetry"
)

// Class selects the device energy design.
type Class int

// Device classes.
const (
	ClassBattery Class = iota
	ClassHarvesting
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassBattery:
		return "battery"
	case ClassHarvesting:
		return "harvesting"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Config describes one device.
type Config struct {
	ID             lpwan.EUI64
	Class          Class
	Sensor         telemetry.SensorType
	ReportInterval time.Duration
	Key            telemetry.Key

	// Harvesting class: the ambient source and capacitor buffer.
	Harvester energy.Harvester
	Store     *energy.Store

	// Battery class: the finite reserve in µJ and the sleep floor draw.
	BatteryMicroJoules float64
	SleepMicroWatts    float64

	// Task is the per-report energy bill (sense + CPU + TX).
	Task energy.TaskCost

	// ReadSensor produces the reading value; nil defaults to a constant.
	ReadSensor func(now time.Duration) float32
}

// TransmitFunc receives the sealed 24-byte telemetry packet at emission
// time. It represents the RF channel: it may drop the packet, deliver it
// to one gateway, or deliver it to several.
type TransmitFunc func(now time.Duration, wire []byte)

// Stats counts a device's activity.
type Stats struct {
	Attempts      uint64 // wakeups that wanted to transmit
	Sent          uint64 // packets actually emitted
	SkippedEnergy uint64 // wakeups skipped for lack of stored energy
}

// Device is one edge sensor instance inside a simulation.
type Device struct {
	cfg Config

	// hardwareLife is the sampled electronics lifetime (years) and its
	// cause, drawn from the class BOM at construction.
	hardwareLife  float64
	hardwareCause string

	// batteryExhaust is when the battery runs flat (battery class only).
	batteryExhaust time.Duration

	deployedAt     time.Duration
	lastIntegrated time.Duration
	seq            uint32
	stats          Stats
	ticker         *sim.Ticker
	transmit       TransmitFunc
}

// New builds a device, sampling its hardware lifetime from the
// class-appropriate bill of materials.
func New(cfg Config, src *rng.Source) *Device {
	var bom reliability.BOM
	switch cfg.Class {
	case ClassBattery:
		bom = reliability.BatteryDeviceBOM()
	case ClassHarvesting:
		bom = reliability.HarvestingDeviceBOM()
	default:
		panic(fmt.Sprintf("device: unknown class %d", int(cfg.Class)))
	}
	life, cause := bom.SampleLifetime(src)
	d := &Device{cfg: cfg, hardwareLife: life, hardwareCause: cause}
	if cfg.Class == ClassBattery {
		d.batteryExhaust = d.computeBatteryExhaustion()
	}
	return d
}

// computeBatteryExhaustion returns how long the battery reserve lasts
// under the configured report cadence and sleep floor.
func (d *Device) computeBatteryExhaustion() time.Duration {
	perSecond := d.cfg.SleepMicroWatts // µJ/s
	if d.cfg.ReportInterval > 0 {
		perSecond += d.cfg.Task.Total() / d.cfg.ReportInterval.Seconds()
	}
	if perSecond <= 0 {
		return time.Duration(1<<63 - 1)
	}
	seconds := d.cfg.BatteryMicroJoules / perSecond
	return time.Duration(seconds * float64(time.Second))
}

// ID returns the device address.
func (d *Device) ID() lpwan.EUI64 { return d.cfg.ID }

// Class returns the device class.
func (d *Device) Class() Class { return d.cfg.Class }

// HardwareLifeYears returns the sampled electronics lifetime.
func (d *Device) HardwareLifeYears() float64 { return d.hardwareLife }

// Install schedules the device's behaviour on the engine, starting now.
// The device reports every ReportInterval until it dies.
func (d *Device) Install(eng *sim.Engine, tx TransmitFunc) {
	if d.cfg.ReportInterval <= 0 {
		panic("device: non-positive report interval")
	}
	d.transmit = tx
	d.deployedAt = eng.Now()
	d.lastIntegrated = eng.Now()
	d.ticker = eng.Every(d.cfg.ReportInterval, func() {
		d.wake(eng)
	})
}

// wake is one duty cycle: integrate harvest, check life, attempt a report.
func (d *Device) wake(eng *sim.Engine) {
	now := eng.Now()
	if !d.Alive(now) {
		d.ticker.Stop()
		return
	}
	d.stats.Attempts++

	if d.cfg.Class == ClassHarvesting {
		d.integrateHarvest(now)
		if !d.cfg.Store.TryDraw(d.cfg.Task.Total()) {
			d.stats.SkippedEnergy++
			return
		}
	}

	value := float32(1)
	if d.cfg.ReadSensor != nil {
		value = d.cfg.ReadSensor(now)
	}
	d.seq++
	p := telemetry.Packet{
		Device:        d.cfg.ID,
		Seq:           d.seq,
		Sensor:        d.cfg.Sensor,
		Value:         value,
		UptimeSeconds: uint32((now - d.deployedAt) / time.Second),
	}
	wire, err := p.Seal(d.cfg.Key)
	if err != nil {
		// A config error (bad key): treat as a dead device rather than
		// crash a 50-year run.
		d.ticker.Stop()
		return
	}
	d.stats.Sent++
	if d.transmit != nil {
		d.transmit(now, wire)
	}
}

// integrateHarvest accumulates harvested energy since the last wake.
// Short gaps sample the midpoint power; long gaps use the long-run mean
// (the diurnal detail washes out over many cycles).
func (d *Device) integrateHarvest(now time.Duration) {
	dt := now - d.lastIntegrated
	if dt <= 0 {
		return
	}
	var power float64
	if dt <= 6*time.Hour {
		power = d.cfg.Harvester.PowerAt(d.lastIntegrated + dt/2)
	} else {
		power = d.cfg.Harvester.MeanPower()
	}
	d.cfg.Store.Integrate(power, dt)
	d.lastIntegrated = now
}

// Alive reports whether the device is functional at virtual time now.
func (d *Device) Alive(now time.Duration) bool {
	age := now - d.deployedAt
	if sim.ToYears(age) >= d.hardwareLife {
		return false
	}
	if d.cfg.Class == ClassBattery && age >= d.batteryExhaust {
		return false
	}
	return true
}

// FailureAt returns when (relative to deployment) the device dies and why.
func (d *Device) FailureAt() (time.Duration, string) {
	hw := sim.Years(d.hardwareLife)
	if d.cfg.Class == ClassBattery && d.batteryExhaust < hw {
		return d.batteryExhaust, "battery-exhausted"
	}
	return hw, d.hardwareCause
}

// Stats returns a copy of the device's counters.
func (d *Device) Stats() Stats { return d.stats }
