package device

import (
	"testing"
	"time"

	"centuryscale/internal/energy"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
	"centuryscale/internal/telemetry"
)

var key = telemetry.DeriveKey([]byte("test-master"), lpwan.EUIFromUint64(0))

func harvestingConfig(id uint64) Config {
	return Config{
		ID:             lpwan.EUIFromUint64(id),
		Class:          ClassHarvesting,
		Sensor:         telemetry.SensorStrain,
		ReportInterval: time.Hour,
		Key:            key,
		Harvester:      energy.Constant{MicroWatts: 50},
		Store:          energy.NewStore(5e6, 1),
		Task:           energy.TaskCost{SenseMicroJoules: 2000, CPUMicroJoules: 3000, TxMicroJoules: 25000},
	}
}

func batteryConfig(id uint64) Config {
	return Config{
		ID:             lpwan.EUIFromUint64(id),
		Class:          ClassBattery,
		Sensor:         telemetry.SensorStrain,
		ReportInterval: time.Hour,
		Key:            key,
		// 2x AA lithium: ~32 kJ.
		BatteryMicroJoules: 3.24e10,
		SleepMicroWatts:    6,
		Task:               energy.TaskCost{SenseMicroJoules: 2000, CPUMicroJoules: 3000, TxMicroJoules: 25000},
	}
}

func TestHarvestingDeviceTransmitsHourly(t *testing.T) {
	eng := sim.NewEngine()
	d := New(harvestingConfig(1), rng.New(1))
	var packets [][]byte
	d.Install(eng, func(_ time.Duration, wire []byte) {
		packets = append(packets, append([]byte(nil), wire...))
	})
	eng.Run(24 * time.Hour)
	// 50 µW harvest, 30 mJ task: interval needs 30000/50 = 600 s < 1 h,
	// so every hourly wake has energy: 24 packets.
	if len(packets) != 24 {
		t.Fatalf("sent %d packets in 24h, want 24", len(packets))
	}
	// Packets verify and carry increasing seq.
	var lastSeq uint32
	for i, wire := range packets {
		p, err := telemetry.Verify(wire, key)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if p.Seq <= lastSeq && i > 0 {
			t.Fatalf("seq not increasing: %d after %d", p.Seq, lastSeq)
		}
		lastSeq = p.Seq
		if p.Device != lpwan.EUIFromUint64(1) {
			t.Fatalf("wrong device in packet: %v", p.Device)
		}
	}
}

func TestHarvestingDeviceSkipsWhenStarved(t *testing.T) {
	cfg := harvestingConfig(2)
	cfg.Harvester = energy.Constant{MicroWatts: 5} // 30 mJ needs 6000 s > 1 h
	cfg.Store = energy.NewStore(5e6, 0)
	eng := sim.NewEngine()
	d := New(cfg, rng.New(2))
	sent := 0
	d.Install(eng, func(time.Duration, []byte) { sent++ })
	eng.Run(24 * time.Hour)
	st := d.Stats()
	if st.SkippedEnergy == 0 {
		t.Fatal("starved device never skipped")
	}
	// 5 µW accumulates 18 mJ/h; one 30 mJ task roughly every two hours.
	if sent < 10 || sent > 14 {
		t.Fatalf("starved device sent %d packets in 24h, want ~12", sent)
	}
	if st.Attempts != 24 {
		t.Fatalf("attempts = %d, want 24", st.Attempts)
	}
}

func TestBatteryDeviceDiesOfExhaustionOrWearOut(t *testing.T) {
	cfg := batteryConfig(3)
	d := New(cfg, rng.New(3))
	at, cause := d.FailureAt()
	years := sim.ToYears(at)
	if years <= 0 || years > 40 {
		t.Fatalf("battery device failure at %v years", years)
	}
	if cause == "" || cause == "none" {
		t.Fatalf("missing failure cause")
	}
}

func TestBatteryExhaustionMath(t *testing.T) {
	cfg := batteryConfig(4)
	cfg.BatteryMicroJoules = 1e6 // tiny battery
	cfg.SleepMicroWatts = 0
	// 30 mJ per hourly report: 1e6/30000 = ~33 reports = ~33 h.
	d := New(cfg, rng.New(4))
	eng := sim.NewEngine()
	sent := 0
	d.Install(eng, func(time.Duration, []byte) { sent++ })
	eng.Run(100 * time.Hour)
	if sent < 30 || sent > 36 {
		t.Fatalf("tiny-battery device sent %d packets, want ~33", sent)
	}
	if d.Alive(eng.Now()) {
		t.Fatal("device should be dead after battery exhaustion")
	}
}

func TestDeviceStopsAtHardwareDeath(t *testing.T) {
	// Run far beyond any plausible hardware life and check the ticker
	// stopped (no packets after death).
	eng := sim.NewEngine()
	d := New(harvestingConfig(5), rng.New(5))
	var lastTx time.Duration
	d.Install(eng, func(now time.Duration, _ []byte) { lastTx = now })
	eng.Run(sim.Years(120))
	deathAt, _ := d.FailureAt()
	if lastTx > deathAt {
		t.Fatalf("packet at %v after death at %v", lastTx, deathAt)
	}
	if d.Alive(eng.Now()) {
		t.Fatal("device alive after 120 years")
	}
}

func TestHarvestingHasNoBatteryDeath(t *testing.T) {
	d := New(harvestingConfig(6), rng.New(6))
	_, cause := d.FailureAt()
	if cause == "battery" || cause == "battery-exhausted" {
		t.Fatalf("harvesting device died of %q", cause)
	}
}

func TestClassString(t *testing.T) {
	if ClassBattery.String() != "battery" || ClassHarvesting.String() != "harvesting" {
		t.Fatal("class names wrong")
	}
	if Class(7).String() != "class(7)" {
		t.Fatal("unknown class fallback")
	}
}

func TestUnknownClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown class did not panic")
		}
	}()
	New(Config{Class: Class(9)}, rng.New(1))
}

func TestInstallZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	cfg := harvestingConfig(7)
	cfg.ReportInterval = 0
	New(cfg, rng.New(1)).Install(sim.NewEngine(), nil)
}

func TestReadSensorWired(t *testing.T) {
	cfg := harvestingConfig(8)
	cfg.ReadSensor = func(now time.Duration) float32 { return float32(now / time.Hour) }
	eng := sim.NewEngine()
	d := New(cfg, rng.New(8))
	var values []float32
	d.Install(eng, func(_ time.Duration, wire []byte) {
		p, err := telemetry.Verify(wire, key)
		if err != nil {
			t.Fatal(err)
		}
		values = append(values, p.Value)
	})
	eng.Run(3 * time.Hour)
	if len(values) != 3 || values[0] != 1 || values[2] != 3 {
		t.Fatalf("sensor values = %v", values)
	}
}

func TestUptimeFieldAdvances(t *testing.T) {
	eng := sim.NewEngine()
	d := New(harvestingConfig(9), rng.New(9))
	var uptimes []uint32
	d.Install(eng, func(_ time.Duration, wire []byte) {
		p, _ := telemetry.Verify(wire, key)
		uptimes = append(uptimes, p.UptimeSeconds)
	})
	eng.Run(3 * time.Hour)
	if len(uptimes) != 3 {
		t.Fatalf("got %d packets", len(uptimes))
	}
	if uptimes[0] != 3600 || uptimes[1] != 7200 || uptimes[2] != 10800 {
		t.Fatalf("uptimes = %v", uptimes)
	}
}

func TestDeterministicLifetimes(t *testing.T) {
	a := New(harvestingConfig(10), rng.New(42))
	b := New(harvestingConfig(10), rng.New(42))
	if a.HardwareLifeYears() != b.HardwareLifeYears() {
		t.Fatal("same seed produced different lifetimes")
	}
}

func BenchmarkDeviceYear(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		d := New(harvestingConfig(1), rng.New(1))
		d.Install(eng, func(time.Duration, []byte) {})
		eng.Run(sim.Years(1))
	}
}
