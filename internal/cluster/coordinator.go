package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"centuryscale/internal/batch"
	"centuryscale/internal/cloud"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/obs"
	"centuryscale/internal/resilience"
	"centuryscale/internal/telemetry"
)

// Config tunes a Coordinator. Peers, Replicas, WriteQuorum, and Secret
// are required; zero values elsewhere take the defaults noted.
type Config struct {
	// Peers are the endpoint nodes' base URLs; the slice index is the
	// node's identity on the ring, so every router must list peers in
	// the same order.
	Peers []string
	// Replicas (R) is how many owners each packet is written to.
	Replicas int
	// WriteQuorum (W) is how many owners must durably append before the
	// coordinator acknowledges. 1 <= W <= R.
	WriteQuorum int
	// Secret is the shared cluster secret; it authenticates the
	// coordinator's arrival stamps and the replication routes.
	Secret string
	// VNodes is the ring's virtual-node count per peer. Default 64.
	VNodes int
	// Clock stamps arrivals and drives the failure detector. Default
	// obs.ProcessClock(); tests inject a fake.
	Clock obs.Clock
	// SuspectAfter / DownAfter are the detector thresholds. Defaults
	// 2s / 6s.
	SuspectAfter time.Duration
	DownAfter    time.Duration
	// Client is the HTTP client for heartbeats and read paths. Default:
	// 5-second timeout.
	Client *http.Client
	// Uplink tunes the per-peer resilience.Uplink used for replicated
	// ingest (retries, breaker, jitter seed).
	Uplink resilience.Config
}

// Errors from the coordinator.
var (
	// ErrDuplicate reports that a replica already held the packet — a
	// success for quorum purposes (the reading is durable there).
	ErrDuplicate = errors.New("cluster: replica reports duplicate")
	// ErrNoQuorum reports that fewer than W replicas durably appended;
	// the packet is NOT acknowledged and the caller must retry.
	ErrNoQuorum = errors.New("cluster: write quorum not reached")
	// ErrUnavailable reports that a read found no live replica for the
	// device's partition.
	ErrUnavailable = errors.New("cluster: no live replica for partition")
)

// peer is the coordinator's handle on one endpoint node.
type peer struct {
	index  int
	url    string
	uplink *resilience.Uplink
}

// Coordinator is the router-tier brain: it partitions devices over the
// ring, replicates ingest to R owners through per-peer resilient
// uplinks, acknowledges on W durable appends, detects dead nodes by
// heartbeat, and read-repairs divergent replicas on range queries.
// Safe for concurrent use.
type Coordinator struct {
	cfg    Config
	ring   *Ring
	det    *Detector
	peers  []*peer
	client *http.Client
	clock  obs.Clock

	acked       atomic.Uint64
	noQuorum    atomic.Uint64
	rejected    atomic.Uint64
	repaired    atomic.Uint64
	hbFailures  atomic.Uint64
	lastHB      atomic.Int64 // clock nanos of the last heartbeat round
	closedOnce  sync.Once
	closeErr    error
	healthState atomic.Int32 // last health status computed, for /status
}

// New builds a coordinator. It validates the quorum arithmetic up front:
// a misconfigured W is a deployment error better caught at boot than
// discovered as silent data loss in year 30.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: no peers")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: %d replicas but only %d peers", cfg.Replicas, len(cfg.Peers))
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = cfg.Replicas/2 + 1
	}
	if cfg.WriteQuorum > cfg.Replicas {
		return nil, fmt.Errorf("cluster: write quorum %d exceeds replicas %d", cfg.WriteQuorum, cfg.Replicas)
	}
	if cfg.Secret == "" {
		return nil, errors.New("cluster: empty secret")
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.ProcessClock()
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2 * time.Second
	}
	if cfg.DownAfter <= cfg.SuspectAfter {
		cfg.DownAfter = 3 * cfg.SuspectAfter
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}

	c := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(len(cfg.Peers), cfg.VNodes),
		det:    NewDetector(len(cfg.Peers), cfg.Clock, cfg.SuspectAfter, cfg.DownAfter),
		client: cfg.Client,
		clock:  cfg.Clock,
	}
	for i, url := range cfg.Peers {
		ucfg := cfg.Uplink
		if ucfg.Seed == 0 {
			// Distinct jitter streams per peer, still seed-stable.
			ucfg.Seed = uint64(i) + 1
		}
		sender := &replicaSender{url: url, secret: cfg.Secret, client: cfg.Client}
		c.peers = append(c.peers, &peer{
			index:  i,
			url:    url,
			uplink: resilience.NewUplink(sender, ucfg),
		})
	}
	return c, nil
}

// Close stops the per-peer uplinks.
func (c *Coordinator) Close(ctx context.Context) error {
	c.closedOnce.Do(func() {
		for _, p := range c.peers {
			if err := p.uplink.Close(ctx); err != nil && c.closeErr == nil {
				c.closeErr = err
			}
		}
	})
	return c.closeErr
}

// Ring exposes the partition map (for status pages and tests).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Detector exposes the failure detector (for status pages and tests).
func (c *Coordinator) Detector() *Detector { return c.det }

// clusterPayload frames a packet for the replica uplink: the
// coordinator's arrival stamp (8 bytes, big-endian nanoseconds) followed
// by the raw wire packet. Framing the stamp INTO the payload — rather
// than passing it out-of-band — means a payload parked in an uplink's
// store-and-forward queue replays with its original arrival time, not
// the drain time.
func clusterPayload(arrival time.Duration, wire []byte) []byte {
	buf := make([]byte, 8+len(wire))
	binary.BigEndian.PutUint64(buf[:8], uint64(arrival))
	copy(buf[8:], wire)
	return buf
}

func splitClusterPayload(payload []byte) (time.Duration, []byte, error) {
	if len(payload) < 8+telemetry.PacketSize {
		return 0, nil, fmt.Errorf("cluster: short payload (%d bytes)", len(payload))
	}
	return time.Duration(binary.BigEndian.Uint64(payload[:8])), payload[8:], nil
}

// replicaSender posts framed payloads to one node's /ingest with the
// cluster headers. It implements resilience.Sender so the uplink's
// retry/breaker/hint machinery applies unchanged.
type replicaSender struct {
	url    string
	secret string
	client *http.Client
}

func (s *replicaSender) Send(payload []byte) error {
	arrival, wire, err := splitClusterPayload(payload)
	if err != nil {
		return resilience.Permanent(err)
	}
	// One sender carries both shapes: a bare packet (exactly PacketSize
	// bytes) goes to /ingest, a batch frame to /ingest/batch. The two
	// can never be confused — a frame is at least header + one packet.
	route := "/ingest"
	if batch.IsFrame(wire) {
		route = "/ingest/batch"
	}
	req, err := http.NewRequest("POST", s.url+route, bytes.NewReader(wire))
	if err != nil {
		return resilience.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(cloud.ClusterSecretHeader, s.secret)
	req.Header.Set(cloud.ClusterArrivalHeader, strconv.FormatInt(int64(arrival), 10))
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: replicate post: %w", err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	switch {
	case resp.StatusCode == http.StatusAccepted:
		return nil
	case resp.StatusCode == http.StatusUnprocessableEntity:
		// The replica already has it (a retry, or the other replica's
		// read-repair beat us): durable there, so quorum-countable —
		// and Permanent, so the uplink stops retrying.
		return resilience.Permanent(ErrDuplicate)
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests:
		secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		var after time.Duration
		if secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return &resilience.RetryAfterError{After: after, Err: fmt.Errorf("cluster: replica status %d", resp.StatusCode)}
	case resp.StatusCode >= 500:
		return fmt.Errorf("cluster: replica status %d", resp.StatusCode)
	default:
		return resilience.Permanent(fmt.Errorf("cluster: replica status %d", resp.StatusCode))
	}
}

// quorumSuccess reports whether one replica send counts toward W.
func quorumSuccess(err error) bool {
	return err == nil || errors.Is(err, ErrDuplicate)
}

// Ingest replicates one raw packet to its partition's owners and
// acknowledges (returns nil) only after WriteQuorum of them have durably
// appended it. On a missed quorum it returns a RetryAfterError carrying
// the largest hint any replica offered — the router's upstream buffers
// and retries, exactly as it would against a single degraded endpoint.
// Structurally invalid packets are Permanent: unsendable anywhere.
//lint:hotpath budget=9 quorum fan-out costs are per-packet and bounded by Replicas (outcome slice, payload framing, one goroutine per owner), never per-point
func (c *Coordinator) Ingest(ctx context.Context, wire []byte) error {
	p, err := telemetry.Parse(wire)
	if err != nil {
		c.rejected.Add(1)
		return resilience.Permanent(err)
	}
	arrival := c.clock()
	owners := c.ring.Owners(p.Device, c.cfg.Replicas)
	payload := clusterPayload(arrival, wire)

	type outcome struct {
		node int
		err  error
	}
	results := make([]outcome, len(owners))
	var wg sync.WaitGroup
	for i, node := range owners {
		wg.Add(1)
		go func(i, node int) {
			defer wg.Done()
			err := c.peers[node].uplink.SendSync(ctx, payload)
			results[i] = outcome{node: node, err: err}
		}(i, node)
	}
	wg.Wait()

	successes := 0
	var hint time.Duration
	var lastErr error
	for _, r := range results {
		if quorumSuccess(r.err) {
			successes++
			c.det.Observe(r.node, true)
			continue
		}
		lastErr = r.err
		var ra *resilience.RetryAfterError
		if errors.As(r.err, &ra) && ra.After > hint {
			hint = ra.After
		}
	}
	if successes >= c.cfg.WriteQuorum {
		c.acked.Add(1)
		return nil
	}
	c.noQuorum.Add(1)
	if hint <= 0 {
		hint = time.Second
	}
	return &resilience.RetryAfterError{
		After: hint,
		Err:   fmt.Errorf("%w: %d of %d (last: %v)", ErrNoQuorum, successes, c.cfg.WriteQuorum, lastErr),
	}
}

// IngestBatch replicates a frame of packets to the partitions' owners
// and acknowledges (returns nil) only when EVERY packet in the frame
// has reached its write quorum. Each owner node receives one sub-frame
// holding exactly the packets it owns — stamped with one shared arrival
// time — so a frame of N packets costs at most R HTTP requests and R
// group commits cluster-wide instead of N×R of each. A replica's 202
// covers its whole sub-frame (the endpoint does not acknowledge a batch
// before the group fsync covering it returns), so sub-frame success
// counts toward every contained packet's quorum.
//
// On a missed quorum the caller retries the whole frame: replicas that
// already hold some packets count them as duplicates, which remain
// quorum-countable, exactly like the single-packet retry path.
func (c *Coordinator) IngestBatch(ctx context.Context, frame []byte) error {
	payload, n, err := batch.Split(frame, 0)
	if err != nil {
		c.rejected.Add(1)
		return resilience.Permanent(err)
	}
	arrival := c.clock()

	// Route each packet to its owners, building one sub-frame per node.
	builders := make([]*batch.Builder, len(c.peers))
	ownersOf := make([][]int, 0, n)
	for i := 0; i < n; i++ {
		wire := batch.Packet(payload, i)
		p, err := telemetry.Parse(wire)
		if err != nil {
			// A structurally invalid packet poisons the frame: the
			// sender's batcher only frames fixed-size packets, so this
			// is corruption or abuse, not weather. Unsendable anywhere.
			c.rejected.Add(1)
			return resilience.Permanent(err)
		}
		owners := c.ring.Owners(p.Device, c.cfg.Replicas)
		for _, node := range owners {
			if builders[node] == nil {
				builders[node] = &batch.Builder{}
			}
			// Cannot fail: the size matched Split's contract and a
			// sub-frame can never exceed the source frame's cap.
			_ = builders[node].Add(wire)
		}
		ownersOf = append(ownersOf, owners)
	}

	// One concurrent SendSync per owner node, same delivery discipline
	// as the single-packet path: nil from SendSync means the node
	// accepted the sub-frame before it returned.
	payloads := make([][]byte, len(c.peers))
	for node, b := range builders {
		if b != nil {
			payloads[node] = clusterPayload(arrival, b.Take())
		}
	}
	errs := make([]error, len(c.peers))
	var wg sync.WaitGroup
	for node := range payloads {
		if payloads[node] == nil {
			continue
		}
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			errs[node] = c.peers[node].uplink.SendSync(ctx, payloads[node])
		}(node)
	}
	wg.Wait()

	var hint time.Duration
	var lastErr error
	for node := range payloads {
		if payloads[node] == nil {
			continue
		}
		if quorumSuccess(errs[node]) {
			c.det.Observe(node, true)
			continue
		}
		lastErr = errs[node]
		var ra *resilience.RetryAfterError
		if errors.As(errs[node], &ra) && ra.After > hint {
			hint = ra.After
		}
	}

	// Per-packet quorum: a packet is acknowledged iff enough of ITS
	// owners succeeded — node outcomes are shared across the frame, but
	// the durability question is still asked packet by packet.
	ackedPkts := 0
	for _, owners := range ownersOf {
		succ := 0
		for _, node := range owners {
			if quorumSuccess(errs[node]) {
				succ++
			}
		}
		if succ >= c.cfg.WriteQuorum {
			ackedPkts++
		}
	}
	if ackedPkts == len(ownersOf) {
		c.acked.Add(uint64(ackedPkts))
		return nil
	}
	c.noQuorum.Add(uint64(len(ownersOf) - ackedPkts))
	if hint <= 0 {
		hint = time.Second
	}
	return &resilience.RetryAfterError{
		After: hint,
		Err: fmt.Errorf("%w: %d of %d packets short of quorum %d (last: %v)",
			ErrNoQuorum, len(ownersOf)-ackedPkts, len(ownersOf), c.cfg.WriteQuorum, lastErr),
	}
}

// History returns one device's merged, repaired history across its
// replicas, bounded to arrival times in [from, to). The merge surveys
// every live owner, unions by sequence number, and — before answering —
// pushes any records a lagging owner is missing back to it, so a node
// recovering from a crash converges by being read. A replica's records
// for one device are identical across nodes (the coordinator stamped
// one arrival), so union-by-seq is exact, not approximate.
func (c *Coordinator) History(ctx context.Context, dev lpwan.EUI64, from, to time.Duration) ([]cloud.ClusterRecord, error) {
	owners := c.ring.Owners(dev, c.cfg.Replicas)

	type survey struct {
		node    int
		records []cloud.ClusterRecord
		err     error
	}
	surveys := make([]survey, 0, len(owners))
	for _, node := range owners {
		if c.det.Down(node) {
			continue
		}
		recs, err := c.fetchHistory(ctx, c.peers[node], dev)
		if err != nil {
			c.det.Observe(node, false)
			continue
		}
		c.det.Observe(node, true)
		surveys = append(surveys, survey{node: node, records: recs})
	}
	if len(surveys) == 0 {
		return nil, fmt.Errorf("%w: device %v", ErrUnavailable, dev)
	}

	merged := make(map[uint32]cloud.ClusterRecord)
	for _, sv := range surveys {
		for _, rec := range sv.records {
			if _, ok := merged[rec.Seq]; !ok {
				merged[rec.Seq] = rec
			}
		}
	}
	full := make([]cloud.ClusterRecord, 0, len(merged))
	for _, rec := range merged {
		full = append(full, rec)
	}
	sort.Slice(full, func(i, j int) bool {
		if full[i].AtNanos != full[j].AtNanos {
			return full[i].AtNanos < full[j].AtNanos
		}
		return full[i].Seq < full[j].Seq
	})

	// Read-repair: push each surveyed node the records it lacks.
	for _, sv := range surveys {
		have := make(map[uint32]bool, len(sv.records))
		for _, rec := range sv.records {
			have[rec.Seq] = true
		}
		var missing []cloud.ClusterRecord
		for _, rec := range full {
			if !have[rec.Seq] {
				missing = append(missing, rec)
			}
		}
		if len(missing) == 0 {
			continue
		}
		if err := c.replicate(ctx, c.peers[sv.node], dev, missing); err == nil {
			c.repaired.Add(uint64(len(missing)))
		}
	}

	out := full[:0:0]
	for _, rec := range full {
		if at := time.Duration(rec.AtNanos); at >= from && at < to {
			out = append(out, rec)
		}
	}
	return out, nil
}

func (c *Coordinator) fetchHistory(ctx context.Context, p *peer, dev lpwan.EUI64) ([]cloud.ClusterRecord, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", p.url+"/cluster/history?device="+dev.String(), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(cloud.ClusterSecretHeader, c.cfg.Secret)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("cluster: history status %d from %s", resp.StatusCode, p.url)
	}
	var recs []cloud.ClusterRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		return nil, err
	}
	return recs, nil
}

func (c *Coordinator) replicate(ctx context.Context, p *peer, dev lpwan.EUI64, recs []cloud.ClusterRecord) error {
	body, err := json.Marshal(cloud.ReplicatePayload{Device: dev.String(), Records: recs})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", p.url+"/cluster/replicate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cloud.ClusterSecretHeader, c.cfg.Secret)
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: replicate status %d from %s", resp.StatusCode, p.url)
	}
	return nil
}

// HeartbeatOnce probes every peer's /status once, synchronously, and
// feeds the outcomes to the detector. Exposed on its own so tests (and
// the chaos harness) can drive detection deterministically; daemons run
// it from RunHeartbeats.
func (c *Coordinator) HeartbeatOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			ok := c.probe(ctx, p)
			if !ok {
				c.hbFailures.Add(1)
			}
			c.det.Observe(i, ok)
		}(i, p)
	}
	wg.Wait()
	c.lastHB.Store(int64(c.clock()))
}

func (c *Coordinator) probe(ctx context.Context, p *peer) bool {
	req, err := http.NewRequestWithContext(ctx, "GET", p.url+"/status", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode == http.StatusOK
}

// RunHeartbeats probes every peer on the interval until ctx is
// cancelled. Daemons run this in one goroutine next to their HTTP
// server; it owns no state beyond the detector updates, so cancelling
// the context is a complete shutdown.
func (c *Coordinator) RunHeartbeats(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			c.HeartbeatOnce(ctx)
		}
	}
}

// RegisterHealth adds the cluster aggregation check to h: healthy when
// every node answers heartbeats, Degraded while any node is down or
// suspect but every partition still has a live owner (the contract is
// served, with reduced margin — the pager must not treat this as a
// total outage), and failing outright only when some partition has zero
// live owners, because then acknowledged durability for those devices'
// partition cannot be extended and reads for them have no source.
func (c *Coordinator) RegisterHealth(h *obs.Health) {
	h.Register("cluster", c.aggregateHealth)
}

// aggregateHealth evaluates the tri-state aggregation from the current
// detector snapshot and records the verdict for /status, so both the
// health check and the status route always serve a fresh opinion.
func (c *Coordinator) aggregateHealth() error {
	states := c.det.Snapshot()
	down := 0
	for _, s := range states {
		if s == StateDown {
			down++
		}
	}
	if down == 0 {
		c.healthState.Store(int32(obs.StatusHealthy))
		return nil
	}
	for _, seg := range c.ring.Segments(c.cfg.Replicas) {
		alive := 0
		for _, node := range seg {
			if states[node] != StateDown {
				alive++
			}
		}
		if alive == 0 {
			c.healthState.Store(int32(obs.StatusFailed))
			return fmt.Errorf("partition %v has no live replica (%d of %d nodes down)", seg, down, len(states))
		}
	}
	c.healthState.Store(int32(obs.StatusDegraded))
	return obs.Degraded(fmt.Errorf("%d of %d nodes down", down, len(states)))
}

// RegisterMetrics exposes the coordinator's counters on reg under the
// cluster_ prefix.
func (c *Coordinator) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("cluster_ingest_acked_total", "packets acknowledged after reaching write quorum", c.acked.Load)
	reg.CounterFunc("cluster_ingest_no_quorum_total", "packets refused because quorum was missed", c.noQuorum.Load)
	reg.CounterFunc("cluster_ingest_rejected_total", "structurally invalid packets refused outright", c.rejected.Load)
	reg.CounterFunc("cluster_read_repair_records_total", "records pushed to lagging replicas by read-repair", c.repaired.Load)
	reg.CounterFunc("cluster_heartbeat_failures_total", "heartbeat probes that did not come back OK", c.hbFailures.Load)
	reg.GaugeFunc("cluster_nodes_down", "peers the failure detector currently considers down", func() float64 {
		n := 0
		for _, s := range c.det.Snapshot() {
			if s == StateDown {
				n++
			}
		}
		return float64(n)
	})
}

// Stats is the coordinator's counter snapshot.
type Stats struct {
	Acked             uint64 `json:"acked"`
	NoQuorum          uint64 `json:"no_quorum"`
	Rejected          uint64 `json:"rejected"`
	RepairedRecords   uint64 `json:"repaired_records"`
	HeartbeatFailures uint64 `json:"heartbeat_failures"`
}

// Stats returns a snapshot of the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Acked:             c.acked.Load(),
		NoQuorum:          c.noQuorum.Load(),
		Rejected:          c.rejected.Load(),
		RepairedRecords:   c.repaired.Load(),
		HeartbeatFailures: c.hbFailures.Load(),
	}
}
