// Package cluster turns N independent endpoint nodes into one logical
// endpoint: a consistent-hash ring partitions the device space, every
// accepted packet is replicated to R owners, and an acknowledgement is
// only sent upstream after W of them have durably appended it — the
// WAL-before-ack contract, extended across machines.
//
// The paper's endpoint is the experiment's weakest single point: sensors
// survive decades by doing almost nothing, but centurysensors.com is one
// process on one host. ROADMAP item 2 and the related deployment papers
// (Signpost, self-healing LoRa) all land on the same remedy — replicate
// the boring way, fail over automatically, and rehearse the failures on
// a schedule rather than waiting fifty years to discover the recovery
// path rotted. Everything here is built to be driven by internal/chaos
// under a seed: kill any node mid-ingest and the acknowledged history
// must survive byte-exact.
package cluster

import (
	"sort"
	"strconv"

	"centuryscale/internal/lpwan"
	"centuryscale/internal/tsdb"
)

// ringVNodes is the default virtual-node count per physical node: enough
// that removing one node of three moves ~1/3 of the keyspace instead of
// a contiguous half.
const ringVNodes = 64

// Ring is a consistent-hash ring over node indexes. Hashing is
// tsdb.Mix64 — the same splitmix64 finalizer the storage engine shards
// with — so "which node owns this device" and "which shard inside that
// node" are two reads of one well-tested function. Immutable after
// construction; safe for concurrent use.
type Ring struct {
	points []ringPoint
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

// NewRing builds a ring of n nodes with vnodes virtual points each
// (vnodes <= 0 takes the default 64).
func NewRing(n, vnodes int) *Ring {
	if n <= 0 {
		panic("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = ringVNodes
	}
	r := &Ring{nodes: n, points: make([]ringPoint, 0, n*vnodes)}
	for node := 0; node < n; node++ {
		for v := 0; v < vnodes; v++ {
			// Mix a (node, vnode) pair into one point. The inputs are
			// tiny sequential integers — exactly what the finalizer is
			// for.
			h := tsdb.Mix64(uint64(node)<<32 | uint64(v) | 1<<63)
			r.points = append(r.points, ringPoint{hash: h, node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the physical node count.
func (r *Ring) Nodes() int { return r.nodes }

// Owners returns the preference list for a device: the first rep
// distinct nodes clockwise from the device's hash point. The first
// entry is the partition's home primary; the rest are its replicas.
// rep is clamped to the node count.
func (r *Ring) Owners(dev lpwan.EUI64, rep int) []int {
	return r.ownersFrom(tsdb.Mix64(dev.Uint64()), rep)
}

func (r *Ring) ownersFrom(hash uint64, rep int) []int {
	if rep > r.nodes {
		rep = r.nodes
	}
	if rep <= 0 {
		rep = 1
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	out := make([]int, 0, rep)
	seen := make([]bool, r.nodes)
	for i := 0; i < len(r.points) && len(out) < rep; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Segments returns every distinct preference list the ring can produce
// at replication factor rep, deduplicated. This is the cluster's
// partition map: a partition is unavailable exactly when every node in
// its segment is down, which is what the health aggregation checks.
func (r *Ring) Segments(rep int) [][]int {
	seen := make(map[string]bool)
	var out [][]int
	for _, p := range r.points {
		owners := r.ownersFrom(p.hash, rep)
		key := ""
		for _, o := range owners {
			key += strconv.Itoa(o) + ","
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, owners)
		}
	}
	return out
}
