package cluster

import (
	"sync"
	"time"

	"centuryscale/internal/obs"
)

// NodeState is the detector's opinion of one node.
type NodeState uint8

// Node states, ordered by decay: a node that stops answering heartbeats
// passes Alive → Suspect → Down as its last success ages.
const (
	StateAlive NodeState = iota
	StateSuspect
	StateDown
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	default:
		return "state(?)"
	}
}

// Detector is a timeout failure detector: each node's state is a pure
// function of (time since its last successful heartbeat, the two
// thresholds). No gossip, no phi-accrual — with a handful of nodes and
// an injectable clock, the simple thing is also the testable thing.
// Safe for concurrent use.
type Detector struct {
	clock        obs.Clock
	suspectAfter time.Duration
	downAfter    time.Duration

	mu     sync.Mutex
	lastOK []time.Duration
}

// NewDetector tracks n nodes on clock. A node unheard-from for
// suspectAfter becomes Suspect; for downAfter, Down. All nodes start
// Alive as of now: a cluster boots optimistic and lets silence prove
// otherwise. suspectAfter and downAfter must be positive with
// suspectAfter < downAfter.
func NewDetector(n int, clock obs.Clock, suspectAfter, downAfter time.Duration) *Detector {
	if clock == nil {
		clock = obs.ProcessClock()
	}
	if suspectAfter <= 0 || downAfter <= suspectAfter {
		panic("cluster: detector needs 0 < suspectAfter < downAfter")
	}
	d := &Detector{
		clock:        clock,
		suspectAfter: suspectAfter,
		downAfter:    downAfter,
		lastOK:       make([]time.Duration, n),
	}
	now := clock()
	for i := range d.lastOK {
		d.lastOK[i] = now
	}
	return d
}

// Observe records a heartbeat outcome for node. A success resets the
// node's decay; a failure records nothing — state decays by silence, so
// one lost probe on a healthy node cannot flap it (the next success
// lands before suspectAfter does).
func (d *Detector) Observe(node int, ok bool) {
	if !ok {
		return
	}
	now := d.clock()
	d.mu.Lock()
	if now > d.lastOK[node] {
		d.lastOK[node] = now
	}
	d.mu.Unlock()
}

// State returns the detector's current opinion of node.
func (d *Detector) State(node int) NodeState {
	d.mu.Lock()
	last := d.lastOK[node]
	d.mu.Unlock()
	return d.stateAt(last, d.clock())
}

func (d *Detector) stateAt(last, now time.Duration) NodeState {
	age := now - last
	switch {
	case age >= d.downAfter:
		return StateDown
	case age >= d.suspectAfter:
		return StateSuspect
	default:
		return StateAlive
	}
}

// Snapshot returns every node's state in one consistent read.
func (d *Detector) Snapshot() []NodeState {
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NodeState, len(d.lastOK))
	for i, last := range d.lastOK {
		out[i] = d.stateAt(last, now)
	}
	return out
}

// Down reports whether node has decayed all the way to Down.
func (d *Detector) Down(node int) bool { return d.State(node) == StateDown }
