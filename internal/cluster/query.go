package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"centuryscale/internal/lpwan"
)

// Query proxying: the router serves the same /query* routes as a single
// endpoint, so dashboards need no cluster awareness.
//
// Device-scoped queries (/query, /query/uptime?device=...) go to the
// device's owner replicas; among the live answers the coordinator picks
// the most complete one — the replica whose windows cover the most
// points (respectively the highest uptime). Replicas diverge only by
// missing suffixes (a node that was down during some writes), and
// read-repair closes those holes on the next /history; until it does,
// preferring the fuller replica is the read-side of the same policy.
//
// /query/gaps fans out to every live node (each holds only its
// partitions' devices) and merges per device by the SMALLEST gap: a
// replica that missed writes reports a spuriously large gap, and the
// union of arrivals — the truth — can only have a smaller one.

// maxQueryBody bounds a proxied response: a full-century weekly query
// is ~1 MB of JSON; 16 MB leaves room without trusting a node blindly.
const maxQueryBody = 16 << 20

func (c *Coordinator) queryRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		c.proxyDeviceQuery(w, r, "/query", scoreWindows)
	})
	mux.HandleFunc("GET /query/uptime", func(w http.ResponseWriter, r *http.Request) {
		c.proxyDeviceQuery(w, r, "/query/uptime", scoreUptime)
	})
	mux.HandleFunc("GET /query/gaps", c.handleQueryGaps)
}

// fetchQuery GETs one node's pathAndQuery, returning the status and
// (bounded) body. A transport failure is an error; any HTTP status is a
// valid answer for the caller to interpret.
func (c *Coordinator) fetchQuery(ctx context.Context, p *peer, pathAndQuery string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", p.url+pathAndQuery, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxQueryBody))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// scoreWindows ranks a /query answer by total points covered.
func scoreWindows(body []byte) (float64, error) {
	var payload struct {
		Windows []struct {
			Count uint64 `json:"count"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		return 0, err
	}
	var total uint64
	for _, w := range payload.Windows {
		total += w.Count
	}
	return float64(total), nil
}

// scoreUptime ranks a /query/uptime answer by the uptime itself.
func scoreUptime(body []byte) (float64, error) {
	var payload struct {
		WeeklyUptime float64 `json:"weekly_uptime"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		return 0, err
	}
	return payload.WeeklyUptime, nil
}

// proxyDeviceQuery forwards a device-scoped query to the device's owner
// replicas and serves the best-scoring 200 answer. A 4xx from a replica
// (bad parameters, unaligned window) is relayed as-is — the node is
// healthy, the request is wrong; only when no owner can answer at all
// does the router shed 503.
func (c *Coordinator) proxyDeviceQuery(w http.ResponseWriter, r *http.Request, path string, score func([]byte) (float64, error)) {
	dev, err := parseQueryDevice(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	owners := c.ring.Owners(dev, c.cfg.Replicas)
	pathAndQuery := path + "?" + r.URL.Query().Encode()

	best := -1.0
	var bestBody []byte
	clientStatus := 0
	var clientBody []byte
	for _, node := range owners {
		if c.det.Down(node) {
			continue
		}
		status, body, err := c.fetchQuery(r.Context(), c.peers[node], pathAndQuery)
		if err != nil {
			c.det.Observe(node, false)
			continue
		}
		c.det.Observe(node, true)
		switch {
		case status == http.StatusOK:
			if s, err := score(body); err == nil && s > best {
				best, bestBody = s, body
			}
		case status >= 400 && status < 500:
			clientStatus, clientBody = status, body
		}
	}
	switch {
	case bestBody != nil:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(bestBody)
	case clientStatus != 0:
		http.Error(w, string(clientBody), clientStatus)
	default:
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("%v: device %v", ErrUnavailable, dev), http.StatusServiceUnavailable)
	}
}

func parseQueryDevice(r *http.Request) (lpwan.EUI64, error) {
	s := r.URL.Query().Get("device")
	if s == "" {
		return lpwan.EUI64{}, fmt.Errorf("cluster: missing device parameter")
	}
	return lpwan.ParseEUI64(s)
}

type gapEntry struct {
	Device     string  `json:"device"`
	GapSeconds float64 `json:"gap_seconds"`
}

func (c *Coordinator) handleQueryGaps(w http.ResponseWriter, r *http.Request) {
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "cluster: k parameter must be a positive integer", http.StatusBadRequest)
			return
		}
		k = n
	}
	pathAndQuery := "/query/gaps?" + r.URL.Query().Encode()

	merged := make(map[string]float64)
	answered := 0
	for node := range c.peers {
		if c.det.Down(node) {
			continue
		}
		status, body, err := c.fetchQuery(r.Context(), c.peers[node], pathAndQuery)
		if err != nil {
			c.det.Observe(node, false)
			continue
		}
		c.det.Observe(node, true)
		if status != http.StatusOK {
			continue
		}
		var entries []gapEntry
		if err := json.Unmarshal(body, &entries); err != nil {
			continue
		}
		answered++
		for _, e := range entries {
			if cur, ok := merged[e.Device]; !ok || e.GapSeconds < cur {
				merged[e.Device] = e.GapSeconds
			}
		}
	}
	if answered == 0 {
		w.Header().Set("Retry-After", "1")
		http.Error(w, ErrUnavailable.Error(), http.StatusServiceUnavailable)
		return
	}
	out := make([]gapEntry, 0, len(merged))
	for dev, gap := range merged {
		out = append(out, gapEntry{Device: dev, GapSeconds: gap})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GapSeconds != out[j].GapSeconds {
			return out[i].GapSeconds > out[j].GapSeconds
		}
		return out[i].Device < out[j].Device
	})
	if len(out) > k {
		out = out[:k]
	}
	writeJSON(w, out)
}
