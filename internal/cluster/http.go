package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"centuryscale/internal/batch"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/obs"
	"centuryscale/internal/resilience"
	"centuryscale/internal/sim"
)

// Handler returns the router tier's public face — shaped like a single
// endpoint so gateways need no cluster awareness:
//
//	POST /ingest        raw packet; 202 only after the write quorum held it
//	GET  /history       merged + read-repaired readings for one device
//	GET  /status        cluster topology, detector states, counters
//	GET  /query         windowed aggregates, proxied to the device's owners
//	GET  /query/uptime  per-device weekly uptime, proxied likewise
//	GET  /query/gaps    top-K gap devices, fanned out and merged (query.go)
//
// Mount /healthz and /metrics via obs.DebugMux with RegisterHealth /
// RegisterMetrics.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", c.handleIngest)
	mux.HandleFunc("POST /ingest/batch", c.handleIngestBatch)
	mux.HandleFunc("GET /history", c.handleHistory)
	mux.HandleFunc("GET /status", c.handleStatus)
	c.queryRoutes(mux)
	return mux
}

// readLimited reads the whole body, answering 413 for bodies over limit
// — not the silent io.LimitReader truncation this replaces, which turned
// an oversized body into a misleading "malformed packet" rejection.
// ok=false means the response has been written.
func readLimited(w http.ResponseWriter, r *http.Request, limit int) (body []byte, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, int64(limit)+1))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if len(body) > limit {
		http.Error(w, "cluster: request body exceeds limit", http.StatusRequestEntityTooLarge)
		return nil, false
	}
	return body, true
}

func (c *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, ok := readLimited(w, r, 1024)
	if !ok {
		return
	}
	c.writeIngestOutcome(w, c.Ingest(r.Context(), body))
}

// handleIngestBatch is the router's frame front door: one frame in, one
// quorum answer out. 202 means every packet in the frame reached its
// write quorum; anything less sheds the whole frame back to the gateway.
func (c *Coordinator) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readLimited(w, r, batch.MaxFrameBytes)
	if !ok {
		return
	}
	c.writeIngestOutcome(w, c.IngestBatch(r.Context(), body))
}

func (c *Coordinator) writeIngestOutcome(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		w.WriteHeader(http.StatusAccepted)
	case resilience.IsPermanent(err):
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	default:
		// Quorum missed: shed exactly like a degraded single endpoint,
		// propagating the replicas' own Retry-After hint upstream.
		secs := int64(1)
		var ra *resilience.RetryAfterError
		if errors.As(err, &ra) && ra.After > 0 {
			secs = int64((ra.After + time.Second - 1) / time.Second)
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}

// readingPayload mirrors the single-endpoint /history JSON shape, so a
// dashboard pointed at a router cannot tell it from one node.
type readingPayload struct {
	AtSeconds float64 `json:"at_seconds"`
	Seq       uint32  `json:"seq"`
	Sensor    string  `json:"sensor"`
	Value     float32 `json:"value"`
	Uptime    uint32  `json:"device_uptime_seconds"`
}

func (c *Coordinator) handleHistory(w http.ResponseWriter, r *http.Request) {
	devStr := r.URL.Query().Get("device")
	if devStr == "" {
		http.Error(w, "cluster: missing device parameter", http.StatusBadRequest)
		return
	}
	dev, err := lpwan.ParseEUI64(devStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	from, to, err := parseRange(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs, err := c.History(r.Context(), dev, from, to)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	out := make([]readingPayload, len(recs))
	for i, rec := range recs {
		rd := rec.Reading(dev)
		out[i] = readingPayload{
			AtSeconds: rd.At.Seconds(),
			Seq:       rd.Packet.Seq,
			Sensor:    rd.Packet.Sensor.String(),
			Value:     rd.Packet.Value,
			Uptime:    rd.Packet.UptimeSeconds,
		}
	}
	writeJSON(w, out)
}

func parseRange(r *http.Request) (from, to time.Duration, err error) {
	from, to = math.MinInt64, math.MaxInt64
	if v := r.URL.Query().Get("from"); v != "" {
		if from, err = clampedSeconds(v, "from"); err != nil {
			return 0, 0, err
		}
	}
	if v := r.URL.Query().Get("to"); v != "" {
		if to, err = clampedSeconds(v, "to"); err != nil {
			return 0, 0, err
		}
	}
	return from, to, nil
}

// clampedSeconds converts a float seconds parameter to a Duration,
// clamping at ±sim.MaxHorizon and rejecting NaN — the router-tier twin
// of the endpoint's helper, replacing the implementation-defined
// out-of-range float→int64 conversion on inputs like 1e300.
func clampedSeconds(v, name string) (time.Duration, error) {
	secs, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("cluster: bad %s parameter: %v", name, err)
	}
	if math.IsNaN(secs) {
		return 0, fmt.Errorf("cluster: bad %s parameter: NaN", name)
	}
	return sim.Seconds(secs), nil
}

type nodeStatus struct {
	URL   string `json:"url"`
	State string `json:"state"`
}

type statusPayload struct {
	Nodes       []nodeStatus `json:"nodes"`
	Replicas    int          `json:"replicas"`
	WriteQuorum int          `json:"write_quorum"`
	Health      string       `json:"health"`
	Stats       Stats        `json:"stats"`
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	_ = c.aggregateHealth() // refresh the recorded verdict before serving it
	states := c.det.Snapshot()
	nodes := make([]nodeStatus, len(c.peers))
	for i, p := range c.peers {
		nodes[i] = nodeStatus{URL: p.url, State: states[i].String()}
	}
	writeJSON(w, statusPayload{
		Nodes:       nodes,
		Replicas:    c.cfg.Replicas,
		WriteQuorum: c.cfg.WriteQuorum,
		Health:      obs.Status(c.healthState.Load()).String(),
		Stats:       c.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}
