package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"centuryscale/internal/cloud"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/obs"
	"centuryscale/internal/resilience"
	"centuryscale/internal/telemetry"
)

var master = []byte("fleet-master-secret")

const secret = "test-cluster-secret"

func sealed(t *testing.T, dev uint64, seq uint32, value float32) []byte {
	t.Helper()
	id := lpwan.EUIFromUint64(dev)
	wire, err := telemetry.Packet{
		Device: id, Seq: seq, Sensor: telemetry.SensorStrain, Value: value,
	}.Seal(telemetry.DeriveKey(master, id))
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// fakeClock is a hand-advanced obs.Clock.
type fakeClock struct{ nanos atomic.Int64 }

func (c *fakeClock) Now() time.Duration      { return time.Duration(c.nanos.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.nanos.Add(int64(d)) }

// node is one in-process endpoint: a cloud store behind an httptest
// server, armed with the cluster secret.
type node struct {
	store *cloud.Store
	srv   *httptest.Server
}

func newNode(t *testing.T) *node {
	t.Helper()
	store := cloud.NewStore(cloud.StaticKeys(master))
	server := cloud.NewServer(store, time.Now())
	server.SetClusterSecret(secret)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	return &node{store: store, srv: srv}
}

func newCluster(t *testing.T, n, r, w int, clock obs.Clock) ([]*node, *Coordinator) {
	t.Helper()
	nodes := make([]*node, n)
	urls := make([]string, n)
	for i := range nodes {
		nodes[i] = newNode(t)
		urls[i] = nodes[i].srv.URL
	}
	c, err := New(Config{
		Peers: urls, Replicas: r, WriteQuorum: w, Secret: secret,
		Clock:        clock,
		SuspectAfter: time.Second, DownAfter: 3 * time.Second,
		Uplink: resilience.Config{
			MaxAttempts: 2, BreakerThreshold: 1000,
			Sleep: func(context.Context, time.Duration) {},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = c.Close(ctx)
	})
	return nodes, c
}

// devOwnedBy finds a device whose preference list starts with the given
// owner sequence (prefix match on however many nodes are specified).
func devOwnedBy(t *testing.T, ring *Ring, rep int, prefix ...int) uint64 {
	t.Helper()
	for dev := uint64(1); dev < 100_000; dev++ {
		owners := ring.Owners(lpwan.EUIFromUint64(dev), rep)
		ok := len(prefix) <= len(owners)
		for i := range prefix {
			if !ok || owners[i] != prefix[i] {
				ok = false
				break
			}
		}
		if ok {
			return dev
		}
	}
	t.Fatalf("no device found with owner prefix %v", prefix)
	return 0
}

func TestRingDeterministicDistinctBalanced(t *testing.T) {
	r1 := NewRing(3, 0)
	r2 := NewRing(3, 0)
	counts := make([]int, 3)
	for dev := uint64(1); dev <= 3000; dev++ {
		id := lpwan.EUIFromUint64(dev)
		a, b := r1.Owners(id, 2), r2.Owners(id, 2)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("rings disagree for device %d: %v vs %v", dev, a, b)
		}
		if len(a) != 2 || a[0] == a[1] {
			t.Fatalf("owners not distinct: %v", a)
		}
		counts[a[0]]++
	}
	for node, got := range counts {
		if got < 3000/3/2 {
			t.Fatalf("node %d owns only %d of 3000 primaries: %v", node, got, counts)
		}
	}
	// Replication clamps to the node count.
	if got := r1.Owners(lpwan.EUIFromUint64(1), 99); len(got) != 3 {
		t.Fatalf("over-replication not clamped: %v", got)
	}
}

func TestRingMinimalReshuffleOnGrowth(t *testing.T) {
	small, big := NewRing(3, 0), NewRing(4, 0)
	moved := 0
	const total = 3000
	for dev := uint64(1); dev <= total; dev++ {
		id := lpwan.EUIFromUint64(dev)
		if small.Owners(id, 1)[0] != big.Owners(id, 1)[0] {
			moved++
		}
	}
	// Consistent hashing moves ~1/4 of the keyspace when the fourth node
	// joins; a modulo hash would move ~3/4. Allow headroom.
	if moved > total*2/5 {
		t.Fatalf("adding one node moved %d of %d primaries", moved, total)
	}
}

func TestRingSegmentsCoverEveryDevice(t *testing.T) {
	r := NewRing(3, 0)
	segs := r.Segments(2)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	asKey := func(owners []int) string {
		k := ""
		for _, o := range owners {
			k += string(rune('0' + o))
		}
		return k
	}
	known := make(map[string]bool)
	for _, seg := range segs {
		known[asKey(seg)] = true
	}
	for dev := uint64(1); dev <= 500; dev++ {
		owners := r.Owners(lpwan.EUIFromUint64(dev), 2)
		if !known[asKey(owners)] {
			t.Fatalf("device %d owners %v not in segment map %v", dev, owners, segs)
		}
	}
}

func TestDetectorDecayAndRecovery(t *testing.T) {
	clock := &fakeClock{}
	d := NewDetector(2, clock.Now, time.Second, 3*time.Second)
	if s := d.State(0); s != StateAlive {
		t.Fatalf("initial state = %v", s)
	}
	clock.Advance(1500 * time.Millisecond)
	if s := d.State(0); s != StateSuspect {
		t.Fatalf("after 1.5s silence = %v, want suspect", s)
	}
	clock.Advance(2 * time.Second)
	if s := d.State(0); s != StateDown {
		t.Fatalf("after 3.5s silence = %v, want down", s)
	}
	// A failed probe never advances the decay...
	d.Observe(0, false)
	if s := d.State(0); s != StateDown {
		t.Fatalf("failed probe changed state to %v", s)
	}
	// ...a successful one resurrects immediately.
	d.Observe(0, true)
	if s := d.State(0); s != StateAlive {
		t.Fatalf("after successful probe = %v, want alive", s)
	}
	if got := d.Snapshot(); got[0] != StateAlive || got[1] != StateDown {
		t.Fatalf("snapshot = %v", got)
	}
}

func TestIngestReachesQuorumAndStampsOneArrival(t *testing.T) {
	clock := &fakeClock{}
	clock.Advance(42 * time.Hour)
	nodes, c := newCluster(t, 3, 2, 2, clock.Now)

	dev := devOwnedBy(t, c.Ring(), 2, 0, 1)
	if err := c.Ingest(context.Background(), sealed(t, dev, 1, 7.5)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Acked != 1 {
		t.Fatalf("acked = %d", st.Acked)
	}
	id := lpwan.EUIFromUint64(dev)
	h0 := nodes[0].store.History(id)
	h1 := nodes[1].store.History(id)
	if len(h0) != 1 || len(h1) != 1 {
		t.Fatalf("replica histories: %d and %d records", len(h0), len(h1))
	}
	if h0[0] != h1[0] {
		t.Fatalf("replicas diverge: %+v vs %+v", h0[0], h1[0])
	}
	if h0[0].At != 42*time.Hour {
		t.Fatalf("arrival = %v, want the coordinator's stamp 42h", h0[0].At)
	}
	// The non-owner held nothing.
	if h2 := nodes[2].store.History(id); len(h2) != 0 {
		t.Fatalf("non-owner stored %d records", len(h2))
	}
}

func TestIngestDuplicateRetryCountsAsQuorum(t *testing.T) {
	clock := &fakeClock{}
	_, c := newCluster(t, 3, 2, 2, clock.Now)
	dev := devOwnedBy(t, c.Ring(), 2, 0, 1)
	wire := sealed(t, dev, 1, 1)
	if err := c.Ingest(context.Background(), wire); err != nil {
		t.Fatal(err)
	}
	// The same packet again: both replicas answer 422-duplicate, which
	// still certifies durability — the ack must succeed, not 503.
	if err := c.Ingest(context.Background(), wire); err != nil {
		t.Fatalf("duplicate re-ingest not acked: %v", err)
	}
	if st := c.Stats(); st.Acked != 2 || st.NoQuorum != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIngestMissedQuorumShedsWithReplicaHint(t *testing.T) {
	// One peer that always sheds with its own Retry-After hint.
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer shedding.Close()

	c, err := New(Config{
		Peers: []string{shedding.URL}, Replicas: 1, WriteQuorum: 1, Secret: secret,
		Uplink: resilience.Config{
			MaxAttempts: 1, BreakerThreshold: 1000,
			Sleep: func(context.Context, time.Duration) {},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = c.Close(ctx)
	}()

	err = c.Ingest(context.Background(), sealed(t, 5, 1, 1))
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
	var ra *resilience.RetryAfterError
	if !errors.As(err, &ra) || ra.After != 7*time.Second {
		t.Fatalf("hint not propagated end-to-end: %v", err)
	}
	if st := c.Stats(); st.NoQuorum != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIngestMalformedIsPermanent(t *testing.T) {
	_, c := newCluster(t, 3, 2, 2, nil)
	err := c.Ingest(context.Background(), []byte("runt"))
	if !resilience.IsPermanent(err) {
		t.Fatalf("malformed packet not permanent: %v", err)
	}
	if st := c.Stats(); st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHistoryMergesAndReadRepairs(t *testing.T) {
	clock := &fakeClock{}
	nodes, c := newCluster(t, 2, 2, 1, clock.Now)
	dev := devOwnedBy(t, c.Ring(), 2, 0, 1)
	id := lpwan.EUIFromUint64(dev)

	// Both replicas accept seqs 1-2; then node 1 "misses" 3-5 (as if it
	// was down while W=1 acks continued on node 0).
	for seq := uint32(1); seq <= 5; seq++ {
		clock.Advance(time.Minute)
		wire := sealed(t, dev, seq, float32(seq))
		at := clock.Now()
		if err := nodes[0].store.Ingest(at, wire); err != nil {
			t.Fatal(err)
		}
		if seq <= 2 {
			if err := nodes[1].store.Ingest(at, wire); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Refresh the detector: five fake-clock minutes have passed since
	// boot, so without a heartbeat round every node looks down.
	c.HeartbeatOnce(context.Background())

	recs, err := c.History(context.Background(), id, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("merged history has %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint32(i+1) {
			t.Fatalf("merged order wrong at %d: %+v", i, recs)
		}
	}
	// The read repaired the lagging replica byte-exact.
	h0, h1 := nodes[0].store.History(id), nodes[1].store.History(id)
	if len(h1) != 5 {
		t.Fatalf("lagging replica still has %d records after read", len(h1))
	}
	for i := range h0 {
		if h0[i] != h1[i] {
			t.Fatalf("replicas diverge at %d: %+v vs %+v", i, h0[i], h1[i])
		}
	}
	if st := c.Stats(); st.RepairedRecords != 3 {
		t.Fatalf("repaired = %d, want 3", st.RepairedRecords)
	}

	// Range bounds apply to the merged view.
	recs, err = c.History(context.Background(), id, 90*time.Second, 150*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 2 {
		t.Fatalf("range query returned %+v", recs)
	}
}

func TestHealthAggregationTriState(t *testing.T) {
	clock := &fakeClock{}
	nodes, c := newCluster(t, 3, 2, 2, clock.Now)
	h := obs.NewHealth()
	c.RegisterHealth(h)

	c.HeartbeatOnce(context.Background())
	if _, status := h.ReportStatus(); status != obs.StatusHealthy {
		t.Fatalf("all nodes up: status = %v", status)
	}

	// Kill one node; let the detector decay it to down.
	nodes[2].srv.Close()
	clock.Advance(5 * time.Second)
	c.HeartbeatOnce(context.Background())
	body, status := h.ReportStatus()
	if status != obs.StatusDegraded {
		t.Fatalf("one of three down: status = %v (%q), want degraded", status, body)
	}

	// Kill everything: some partition has zero live owners -> failed.
	nodes[0].srv.Close()
	nodes[1].srv.Close()
	clock.Advance(5 * time.Second)
	c.HeartbeatOnce(context.Background())
	if _, status := h.ReportStatus(); status != obs.StatusFailed {
		t.Fatalf("all nodes down: status = %v, want failed", status)
	}
}

func TestFrontHandlerEndToEnd(t *testing.T) {
	clock := &fakeClock{}
	_, c := newCluster(t, 3, 2, 2, clock.Now)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	dev := devOwnedBy(t, c.Ring(), 2, 0, 1)
	resp, err := http.Post(front.URL+"/ingest", "application/octet-stream",
		bytes.NewReader(sealed(t, dev, 1, 2.5)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}

	resp, err = http.Get(front.URL + "/history?device=" + lpwan.EUIFromUint64(dev).String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history = %d", resp.StatusCode)
	}
	var out []readingPayload
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Seq != 1 || out[0].Value != 2.5 {
		t.Fatalf("history payload = %+v", out)
	}

	resp, err = http.Get(front.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusPayload
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 3 || st.Replicas != 2 || st.WriteQuorum != 2 || st.Stats.Acked != 1 {
		t.Fatalf("status payload = %+v", st)
	}
}
