package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"centuryscale/internal/lpwan"
)

// queryCluster boots a 3-node cluster with R=2, W=1 and a fake clock,
// feeds count packets for dev (one per hour of virtual arrival time),
// and returns the nodes, coordinator, and a front server on Handler().
func queryCluster(t *testing.T, dev uint64, count int) ([]*node, *Coordinator, *httptestFront, *fakeClock) {
	t.Helper()
	clock := &fakeClock{}
	nodes, c := newCluster(t, 3, 2, 1, clock.Now)
	for seq := uint32(1); seq <= uint32(count); seq++ {
		clock.Advance(time.Hour)
		if err := c.Ingest(context.Background(), sealed(t, dev, seq, float32(seq))); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
	}
	return nodes, c, newFront(t, c), clock
}

// httptestFront wraps the coordinator's public handler for GETs.
type httptestFront struct {
	t   *testing.T
	url string
}

func newFront(t *testing.T, c *Coordinator) *httptestFront {
	t.Helper()
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return &httptestFront{t: t, url: srv.URL}
}

func (f *httptestFront) get(path string, out any) (int, string) {
	f.t.Helper()
	resp, err := http.Get(f.url + path)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return resp.StatusCode, ""
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			f.t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp.StatusCode, string(raw)
}

type queryResp struct {
	Device  string `json:"device"`
	Windows []struct {
		Count uint64  `json:"count"`
		Sum   float64 `json:"sum"`
	} `json:"windows"`
	Tiers struct {
		Raw int `json:"raw_points"`
	} `json:"tiers"`
}

func sumCounts(q queryResp) (n uint64) {
	for _, w := range q.Windows {
		n += w.Count
	}
	return
}

func TestClusterQueryProxy(t *testing.T) {
	const packets = 10
	dev := uint64(41)
	_, _, front, _ := queryCluster(t, dev, packets)
	devStr := lpwan.EUIFromUint64(dev).String()

	var q queryResp
	status, body := front.get("/query?device="+devStr+"&step=3600&from=0&to=40000", &q)
	if status != http.StatusOK {
		t.Fatalf("/query status %d: %s", status, body)
	}
	if got := sumCounts(q); got != packets {
		t.Fatalf("windows cover %d points, fed %d: %s", got, packets, body)
	}
	if q.Tiers.Raw != packets {
		t.Fatalf("tiers.raw = %d", q.Tiers.Raw)
	}

	// Parameter errors from the replica relay through as 4xx.
	if status, _ := front.get("/query?device="+devStr, nil); status != http.StatusBadRequest {
		t.Fatalf("missing step → %d", status)
	}
	if status, _ := front.get("/query?device=bogus&step=3600", nil); status != http.StatusBadRequest {
		t.Fatalf("bad device → %d", status)
	}

	var up struct {
		WeeklyUptime float64 `json:"weekly_uptime"`
	}
	if status, body := front.get("/query/uptime?device="+devStr+"&horizon=1209600", &up); status != http.StatusOK {
		t.Fatalf("/query/uptime status %d: %s", status, body)
	}
	// 10 hourly arrivals land in week 0 of a 2-week horizon.
	if up.WeeklyUptime != 0.5 {
		t.Fatalf("weekly uptime = %v", up.WeeklyUptime)
	}

	var gaps []gapEntry
	if status, body := front.get("/query/gaps?k=5&horizon=36000", &gaps); status != http.StatusOK {
		t.Fatalf("/query/gaps status %d: %s", status, body)
	}
	if len(gaps) != 1 || gaps[0].Device != devStr {
		t.Fatalf("gaps = %+v", gaps)
	}
}

// TestClusterQueryPrefersFullerReplica: when one owner holds more of
// the history (the other missed writes), the proxy serves the fuller
// answer no matter which owner it reached first.
func TestClusterQueryPrefersFullerReplica(t *testing.T) {
	const packets = 6
	dev := uint64(41)
	nodes, c, front, clock := queryCluster(t, dev, packets)
	devStr := lpwan.EUIFromUint64(dev).String()

	// Hand one owner an extra reading the other never saw (the divergence
	// a node outage leaves until read-repair closes it). The shared fake
	// clock is NOT advanced — silence past DownAfter would make the
	// detector declare every node down.
	owners := c.Ring().Owners(lpwan.EUIFromUint64(dev), 2)
	if err := nodes[owners[1]].store.Ingest(clock.Now()+time.Hour, sealed(t, dev, packets+1, 7)); err != nil {
		t.Fatal(err)
	}

	var q queryResp
	status, body := front.get("/query?device="+devStr+"&step=3600&from=0&to=40000", &q)
	if status != http.StatusOK {
		t.Fatalf("/query status %d: %s", status, body)
	}
	if got := sumCounts(q); got != packets+1 {
		t.Fatalf("proxy served %d points; fuller replica has %d", got, packets+1)
	}
}

// TestClusterQuerySurvivesOwnerLoss: with one owner gone, the other
// still answers; with both gone, the router sheds 503.
func TestClusterQuerySurvivesOwnerLoss(t *testing.T) {
	const packets = 4
	dev := uint64(41)
	nodes, c, front, _ := queryCluster(t, dev, packets)
	devStr := lpwan.EUIFromUint64(dev).String()
	owners := c.Ring().Owners(lpwan.EUIFromUint64(dev), 2)

	nodes[owners[0]].srv.Close()
	var q queryResp
	status, body := front.get("/query?device="+devStr+"&step=3600&from=0&to=40000", &q)
	if status != http.StatusOK {
		t.Fatalf("one owner down: status %d: %s", status, body)
	}
	if got := sumCounts(q); got != packets {
		t.Fatalf("surviving owner served %d of %d", got, packets)
	}

	nodes[owners[1]].srv.Close()
	if status, _ := front.get("/query?device="+devStr+"&step=3600&from=0&to=40000", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("both owners down: status %d, want 503", status)
	}
}
