package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"centuryscale/internal/chaos"
	"centuryscale/internal/cloud"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/obs"
	"centuryscale/internal/resilience"
	"centuryscale/internal/telemetry"
	"centuryscale/internal/tsdb"
)

// chaosNode is one durable endpoint the failover test can crash and
// resurrect: an explicit listener (so the address survives the kill), a
// WAL-backed store, and the data directory that outlives both.
type chaosNode struct {
	dir   string
	addr  string
	store *cloud.Store
	srv   *http.Server
}

func bootChaosNode(t *testing.T, dir, addr string) *chaosNode {
	t.Helper()
	db, err := tsdb.Open(tsdb.Options{Dir: dir, Shards: 4, Sync: tsdb.SyncAlways, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	store := cloud.NewStoreWithDB(cloud.StaticKeys(master), db)
	if _, err := store.ReplayWAL(); err != nil {
		t.Fatal(err)
	}
	server := cloud.NewServer(store, time.Now())
	server.SetClusterSecret(secret)

	var ln net.Listener
	if addr == "" {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
	} else {
		// Reclaim the crashed instance's address, waiting out the kernel.
		deadline := time.Now().Add(5 * time.Second)
		for {
			ln, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rebind %s: %v", addr, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	n := &chaosNode{dir: dir, addr: ln.Addr().String(), store: store, srv: &http.Server{Handler: server}}
	go n.srv.Serve(ln)
	return n
}

// kill tears down the listener and every live connection at once and
// abandons the store without closing it — the WAL handles are left
// exactly as a power cut would leave them.
func (n *chaosNode) kill(t *testing.T) {
	t.Helper()
	if err := n.srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// seedForVictim scans chaos seeds until PlanNodes elects the wanted
// first victim, so each subtest can kill a SPECIFIC node while the
// schedule itself stays a pure function of its seed.
func seedForVictim(t *testing.T, cfg chaos.NodeConfig, victim int) chaos.NodeConfig {
	t.Helper()
	for seed := uint64(1); seed < 1000; seed++ {
		cfg.Seed = seed
		evs := chaos.PlanNodes(cfg)
		if len(evs) > 0 && evs[0].Op == chaos.NodeKill && evs[0].Node == victim {
			return cfg
		}
	}
	t.Fatalf("no seed elects node %d as first victim", victim)
	return cfg
}

// TestChaosKillAnyNodeZeroAckedLoss is the cluster's acceptance test
// (ISSUE 6): a 3-node cluster at R=2, W=2 takes sustained ingest while
// a seeded chaos schedule hard-kills one node mid-stream and restarts
// it from its WAL. One subtest per victim proves "any node" literally.
//
// The contract: a packet the coordinator acknowledged is durable on BOTH
// owners at ack time, so no kill can lose it; packets refused during the
// outage (their partition cannot reach W=2) are the sender's to retry,
// and every one of them is eventually acknowledged after recovery. At
// the end, every acknowledged packet is stored on every owner exactly
// once, byte-exact (re-sealing the stored reading reproduces the
// original wire bytes) — and during the outage the cluster health
// reports degraded, never failed.
func TestChaosKillAnyNodeZeroAckedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node WAL chaos test")
	}
	for victim := 0; victim < 3; victim++ {
		t.Run(fmt.Sprintf("kill-node-%d", victim), func(t *testing.T) {
			runChaosKill(t, victim)
		})
	}
}

func runChaosKill(t *testing.T, victim int) {
	const (
		totalPackets = 150
		killAfter    = 35
		// Keyed in acked packets, and during the outage only partitions
		// that exclude the victim can ack — so keep the window short
		// enough that the surviving third of the fleet drives recovery.
		downFor = 15
	)
	cfg := seedForVictim(t, chaos.NodeConfig{
		Nodes: 3, Kills: 1,
		FirstKillAfter: killAfter, DownFor: downFor,
	}, victim)
	schedule := chaos.NewNodeSchedule(cfg)

	nodes := make([]*chaosNode, 3)
	urls := make([]string, 3)
	for i := range nodes {
		nodes[i] = bootChaosNode(t, t.TempDir(), "")
		urls[i] = "http://" + nodes[i].addr
		t.Cleanup(func(i int) func() {
			return func() { _ = nodes[i].srv.Close(); _ = nodes[i].store.Close() }
		}(i))
	}

	coord, err := New(Config{
		Peers: urls, Replicas: 2, WriteQuorum: 2, Secret: secret,
		SuspectAfter: 25 * time.Millisecond, DownAfter: 75 * time.Millisecond,
		Client: &http.Client{Timeout: 2 * time.Second},
		Uplink: resilience.Config{
			MaxAttempts:      1, // the driver owns retries; keep sends fast
			BreakerThreshold: 3,
			BreakerOpenFor:   20 * time.Millisecond,
			Seed:             uint64(victim) + 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = coord.Close(ctx)
	}()
	health := obs.NewHealth()
	coord.RegisterHealth(health)

	// The device fleet: enough devices that every owner pair appears.
	const fleet = 8
	seqs := make([]uint32, fleet)
	makeWire := func(devIdx int) []byte {
		t.Helper()
		seqs[devIdx]++
		id := lpwan.EUIFromUint64(uint64(devIdx) + 1)
		wire, err := telemetry.Packet{
			Device: id, Seq: seqs[devIdx], Sensor: telemetry.SensorStrain,
			Value: float32(seqs[devIdx]),
		}.Seal(telemetry.DeriveKey(master, id))
		if err != nil {
			t.Fatal(err)
		}
		return wire
	}

	var (
		acked      [][]byte // exactly the payloads the cluster acknowledged
		pending    [][]byte // refused during the outage; retried until acked
		sawDegrade bool
		killed     = -1
	)
	ctx := context.Background()
	trySend := func(wire []byte) bool {
		if err := coord.Ingest(ctx, wire); err != nil {
			if resilience.IsPermanent(err) {
				t.Fatalf("packet surfaced permanent error: %v", err)
			}
			return false
		}
		acked = append(acked, wire)
		return true
	}
	applyDue := func() {
		for _, ev := range schedule.Due(len(acked)) {
			switch ev.Op {
			case chaos.NodeKill:
				t.Logf("chaos: killing node %d at %d acked", ev.Node, len(acked))
				nodes[ev.Node].kill(t)
				killed = ev.Node

				// Let the detector decay the corpse, then assert the
				// aggregate health: the cluster is degraded — still
				// serving its contract — never failed, because every
				// partition keeps a live owner.
				time.Sleep(100 * time.Millisecond)
				coord.HeartbeatOnce(ctx)
				body, status := health.ReportStatus()
				if status != obs.StatusDegraded {
					t.Fatalf("health during outage = %v (%q), want degraded", status, body)
				}
				sawDegrade = true
			case chaos.NodeRestart:
				t.Logf("chaos: restarting node %d at %d acked", ev.Node, len(acked))
				old := nodes[ev.Node]
				nodes[ev.Node] = bootChaosNode(t, old.dir, old.addr)
				killed = -1
			}
		}
	}

	for sent := 0; sent < totalPackets; sent++ {
		wire := makeWire(sent % fleet)
		if !trySend(wire) {
			pending = append(pending, wire)
		}
		applyDue()
		// Opportunistically retry the refused backlog as acks free up.
		if killed == -1 && len(pending) > 0 {
			still := pending[:0]
			for _, w := range pending {
				if !trySend(w) {
					still = append(still, w)
				}
				applyDue()
			}
			pending = still
		}
	}
	if schedule.Remaining() > 0 {
		t.Fatalf("schedule did not finish: %d events left, %d acked", schedule.Remaining(), len(acked))
	}
	// Drain the refused backlog now that the full cluster is back.
	deadline := time.Now().Add(20 * time.Second)
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d packets never acknowledged after recovery (stats %+v)", len(pending), coord.Stats())
		}
		still := pending[:0]
		for _, w := range pending {
			if !trySend(w) {
				still = append(still, w)
			}
		}
		pending = still
		if len(pending) > 0 {
			time.Sleep(20 * time.Millisecond)
		}
	}

	if !sawDegrade {
		t.Fatal("the schedule never exercised the outage window")
	}
	if len(acked) != totalPackets {
		t.Fatalf("acked %d of %d sent", len(acked), totalPackets)
	}
	st := coord.Stats()
	if st.NoQuorum == 0 {
		t.Fatalf("kill never caused a quorum miss — the chaos window missed the datapath (stats %+v)", st)
	}

	// Recovery is complete: a heartbeat round later the cluster is
	// healthy again.
	coord.HeartbeatOnce(ctx)
	if body, status := health.ReportStatus(); status != obs.StatusHealthy {
		t.Fatalf("health after recovery = %v (%q)", status, body)
	}

	// Zero acknowledged loss, byte-exact, exactly once: every payload
	// the cluster ever acknowledged re-seals bit-for-bit from BOTH of
	// its owners' stores.
	type devHist map[uint32]cloud.Reading
	hists := make([]map[lpwan.EUI64]devHist, 3)
	for i, n := range nodes {
		hists[i] = make(map[lpwan.EUI64]devHist)
		for _, id := range n.store.Devices() {
			h := make(devHist)
			for _, rd := range n.store.History(id) {
				if _, dup := h[rd.Packet.Seq]; dup {
					t.Fatalf("node %d stores device %v seq %d twice", i, id, rd.Packet.Seq)
				}
				h[rd.Packet.Seq] = rd
			}
			hists[i][id] = h
		}
	}
	for _, wire := range acked {
		p, err := telemetry.Parse(wire)
		if err != nil {
			t.Fatal(err)
		}
		for _, owner := range coord.Ring().Owners(p.Device, 2) {
			rd, ok := hists[owner][p.Device][p.Seq]
			if !ok {
				t.Fatalf("acked packet dev %v seq %d missing from owner %d", p.Device, p.Seq, owner)
			}
			reseal, err := rd.Packet.Seal(telemetry.DeriveKey(master, p.Device))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reseal, wire) {
				t.Fatalf("owner %d stored dev %v seq %d mangled: % x vs % x", owner, p.Device, p.Seq, reseal, wire)
			}
		}
	}
}
