// Quickstart: simulate the paper's 50-year experiment (§4) end to end for
// both gateway designs and print the metric that matters — did some data
// land publicly at least once a week, every week, for 50 years?
package main

import (
	"fmt"

	"centuryscale"
)

func main() {
	fmt.Println("centuryscale quickstart: the 50-year experiment")
	fmt.Println()

	for _, design := range []centuryscale.GatewayDesign{
		centuryscale.OwnedWPAN,
		centuryscale.ThirdPartyLoRa,
	} {
		cfg := centuryscale.DefaultExperiment(design)
		cfg.Seed = 2026
		out := centuryscale.RunExperiment(cfg)

		fmt.Printf("design: %v\n", design)
		fmt.Printf("  devices deployed:        %d (energy-harvesting, transmit-only, never touched)\n", cfg.NumDevices)
		fmt.Printf("  packets sent/delivered:  %d / %d (%.1f%%)\n",
			out.PacketsSent, out.PacketsDelivered, out.DeliveryRatio()*100)
		fmt.Printf("  weekly uptime over 50y:  %.2f%%\n", out.WeeklyUptime*100)
		fmt.Printf("  longest silent gap:      %.1f days\n", out.LongestGap.Hours()/24)
		fmt.Printf("  devices alive at 50y:    %d\n", out.DevicesAliveAtEnd)
		fmt.Printf("  gateways replaced:       %d\n", out.GatewayReplaced)
		if design == centuryscale.ThirdPartyLoRa {
			fmt.Printf("  data credits remaining:  %d\n", out.WalletRemaining)
		}
		fmt.Printf("  total spend:             %v\n", out.Ledger.Total())
		fmt.Println()
	}

	fmt.Println("The experiment's rule: edge devices are never touched after deployment;")
	fmt.Println("gateways and backhaul may be maintained. A week with zero packets at the")
	fmt.Println("public endpoint breaks the uptime streak.")
}
