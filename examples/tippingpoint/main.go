// Tippingpoint: §3.4's planning exercise. A municipality leasing
// gateway/backhaul service pays recurring fees and — worse — absorbs a
// fleet replacement every time the leased technology sunsets. Owning the
// infrastructure is a large, fleet-size-independent capital project. This
// example sweeps fleet size and finds where the curves cross, the point
// at which every entity "should reserve the option of vertical
// integration".
package main

import (
	"fmt"

	"centuryscale"
)

func main() {
	cfg := centuryscale.TippingConfig{
		HorizonYears:          50,
		Gateways:              40,
		LeasedPerGatewayMonth: 3000,        // $30/gateway/month
		SunsetEveryYears:      12,          // one 2G-style sunset per ~decade
		DeviceReplaceCents:    15000,       // $150 hardware+labor per stranded device
		OwnedBaseCapex:        200_000_000, // $2M build-out
		OwnedPerGatewayCapex:  1_000_000,   // $10k per gateway lateral
		OwnedOpexMonth:        200_000,     // $2k/month operations
	}

	fmt.Println("Owned vs leased infrastructure over 50 years (§3.4)")
	fmt.Printf("%-10s %16s %16s %10s\n", "devices", "leased TCO", "owned TCO", "winner")
	for _, n := range []int{100, 1000, 2000, 5000, 10000, 50000} {
		leased := cfg.LeasedTCO(n)
		owned := cfg.OwnedTCO(n)
		winner := "lease"
		if owned <= leased {
			winner = "own"
		}
		fmt.Printf("%-10d %16v %16v %10s\n", n, leased, owned, winner)
	}
	fmt.Println()

	tip := cfg.TippingPoint(10_000_000)
	fmt.Printf("tipping point: owning wins from %d devices up\n", tip)
	fmt.Println()

	// Sensitivity: the faster leased tech sunsets, the earlier owning wins.
	fmt.Println("sensitivity to sunset cadence:")
	for _, sunset := range []float64{8, 12, 20, 0} {
		c := cfg
		c.SunsetEveryYears = sunset
		tip := c.TippingPoint(100_000_000)
		label := fmt.Sprintf("every %.0f years", sunset)
		if sunset == 0 {
			label = "never (hypothetical)"
		}
		val := "never"
		if tip >= 0 {
			val = fmt.Sprintf("%d devices", tip)
		}
		fmt.Printf("  sunsets %-22s -> tipping point at %s\n", label, val)
	}
}
