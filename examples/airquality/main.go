// Airquality: §2's density argument — "Air pollution is highly localized,
// and requires measurement at city-block granularity." This example
// builds a synthetic city-scale pollution field, deploys sensor fleets of
// increasing density, reconstructs the field from each, and reports how
// reconstruction quality depends on sensor spacing.
package main

import (
	"fmt"

	"centuryscale"
)

func main() {
	// A 4 km × 4 km district with 25 block-scale emission sources.
	field := centuryscale.SyntheticAirField(4000, 25, 7)

	fmt.Println("air-quality field reconstruction vs sensor density (4 km district)")
	fmt.Printf("%10s %14s %14s %14s\n", "sensors", "spacing (m)", "RMSE (µg/m³)", "correlation")
	results := centuryscale.AirDensityStudy(field, []int{5, 20, 100, 500, 2000}, 0.05, 7)
	for _, r := range results {
		fmt.Printf("%10d %14.0f %14.2f %14.2f\n", r.Sensors, r.MetersPerSide, r.RMSE, r.Corr)
	}
	fmt.Println()
	fmt.Println("The knee: until sensor spacing approaches the ~100-180 m footprint of a")
	fmt.Println("pollution source (one city block), the reconstructed map barely correlates")
	fmt.Println("with reality — a handful of monitoring stations cannot see the structure.")
	fmt.Println("This is why the paper argues deployments must scale to tens of thousands")
	fmt.Println("of devices, and why device lifetime economics dominate system design.")
}
