// Citydeploy: the paper's §1 argument at Los Angeles scale. First the
// labor arithmetic of recovering a dead citywide deployment, then the
// Ship-of-Theseus comparison: what replacement policy keeps 591,315
// device slots (sampled down to a tractable fleet) alive for 50 years,
// and at what burden?
package main

import (
	"fmt"

	"centuryscale"
)

func main() {
	inv := centuryscale.LosAngeles()
	rep := centuryscale.CityReplacement(inv, centuryscale.DefaultLabor(), 25)

	fmt.Println("Los Angeles sensor-deployment recovery (§1)")
	fmt.Printf("  assets: %d poles + %d intersections + %d streetlights = %d devices\n",
		inv[0], inv[1], inv[2], rep.Devices)
	fmt.Printf("  at %.0f min/device: %.0f person-hours (%v of labor)\n",
		rep.PerDeviceMinutes, rep.PersonHours, centuryscale.Cents(rep.LaborCostCents))
	fmt.Printf("  as a dedicated blitz (100 workers): %.0f working days\n", rep.EnMasseDays)
	fmt.Printf("  riding the rolling project cycle:   %.0f years\n", rep.RollingYears)
	fmt.Println()

	// A 1:1000 sample of the city, 50 years, three policies.
	fmt.Println("Fleet policies over 50 years (600-slot sample, 15-year devices)")
	fmt.Printf("  %-28s %12s %14s %8s\n", "policy", "availability", "replacements", "cost")
	type runCase struct {
		name string
		cfg  centuryscale.FleetConfig
	}
	base := centuryscale.FleetConfig{
		Slots:         600,
		Horizon:       centuryscale.Years(50),
		Lifetime:      centuryscale.FifteenYearDevices(),
		HardwareCents: 10000,
		LaborCents:    2500,
	}
	cases := []runCase{
		{"never replace (§4 rule)", base},
		{"replace on failure", base},
		{"batch with road projects", base},
	}
	cases[0].cfg.Policy = centuryscale.PolicyNone
	cases[1].cfg.Policy = centuryscale.PolicyOnFailure
	cases[1].cfg.RepairLag = 30 * centuryscale.Day
	cases[2].cfg.Policy = centuryscale.PolicyBatch
	cases[2].cfg.BatchZones = 25
	cases[2].cfg.BatchCycle = centuryscale.Years(25)

	for _, c := range cases {
		res := centuryscale.RunFleet(c.cfg, 7)
		fmt.Printf("  %-28s %11.1f%% %14d %8v\n",
			c.name, res.Availability()*100, res.Replacements, centuryscale.Cents(res.CostCents))
	}
	fmt.Println()
	fmt.Println("The takeaway the paper draws: en-masse recovery is intractable, so either")
	fmt.Println("devices ride the geographic project pipeline or they must outlive it.")
}
