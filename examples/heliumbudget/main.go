// Heliumbudget: the §4.3-4.4 analysis of the third-party network option.
// First the wallet arithmetic — prepaying 50 years of uplink for $5 —
// then the backhaul-diversity census the paper measured (top-10 ASes
// carry ~half of ~12,400 public hotspots across ~200 ASes), extended with
// the churn projection the paper left to future work.
package main

import (
	"fmt"
	"time"

	"centuryscale"
)

func main() {
	// Wallet arithmetic (§4.4), using the paper's 365-day years.
	span := 50 * 365 * 24 * time.Hour
	credits := centuryscale.CreditsForUplink(time.Hour, span)
	wallet := centuryscale.NewWallet(0)
	wallet.Provision(500) // $5.00

	fmt.Println("prepaid uplink economics (§4.4)")
	fmt.Printf("  one 24-byte packet per hour for 50 years: %d data credits\n", credits)
	fmt.Printf("  a $5 wallet holds:                        %d data credits\n", wallet.Balance())
	if err := wallet.Charge(credits); err != nil {
		fmt.Printf("  NOT covered: %v\n", err)
	} else {
		fmt.Printf("  covered, with %d credits to spare\n", wallet.Balance())
	}
	fmt.Println()

	// Backhaul diversity (§4.3).
	net := centuryscale.NewHeliumNetwork(centuryscale.DefaultHeliumNetwork(), 7)
	alive, _ := net.AliveAt(0)
	fmt.Println("third-party network census (§4.3)")
	fmt.Printf("  hotspots with public IPs: %d (paper: 12,400)\n", alive)
	fmt.Printf("  top-10 AS share:          %.1f%% (paper: ~50%%)\n", net.TopShare(10, 0)*100)
	fmt.Printf("  unique ASes:              %d (paper: ~200)\n", net.UniqueASes(0))
	fmt.Println()

	fmt.Println("churn projection (the paper's future work)")
	for _, y := range []float64{5, 15, 30, 50} {
		at := centuryscale.Years(y)
		alive, owned := net.AliveAt(at)
		fmt.Printf("  year %4.0f: %6d hotspots alive (%d operator-owned)\n", y, alive, owned)
	}
	fmt.Println()
	fmt.Println("The semi-federated hedge: if the commercial network decays, the operator")
	fmt.Println("can deploy its own hotspots onto the same protocol and keep devices alive.")
}
