// Livingdiary: §4.4-4.5's management story. The experiment's devices are
// never *maintained*, but failures are documented, diagnosed, and
// replaced, and every intervention — gateway swaps, device replacements,
// missed domain renewals — lands in a public maintenance diary. This
// example runs 50 years with the living-study rules on and prints the
// diary a future operator would inherit.
package main

import (
	"fmt"

	"centuryscale"
)

func main() {
	cfg := centuryscale.DefaultExperiment(centuryscale.OwnedWPAN)
	cfg.Seed = 11
	cfg.NumDevices = 16
	cfg.ReportInterval = 2 * centuryscale.Day
	cfg.ReplaceFailedDevices = true
	cfg.DeviceReplaceLag = 45 * centuryscale.Day
	cfg.MissLeaseRenewals = []int{2} // someone forgets the year-30 renewal
	cfg.LeaseLapse = 60 * centuryscale.Day

	out := centuryscale.RunExperiment(cfg)

	fmt.Println("the 50-year experiment, living-study rules (§4.4)")
	fmt.Printf("  weekly uptime:        %.2f%%\n", out.WeeklyUptime*100)
	fmt.Printf("  device replacements:  %d (each documented below)\n", out.DeviceReplacements)
	fmt.Printf("  gateway replacements: %d\n", out.GatewayReplaced)
	fmt.Printf("  devices alive at 50y: %d of %d slots\n", out.DevicesAliveAtEnd, cfg.NumDevices)
	fmt.Printf("  total spend:          %v\n", out.Ledger.Total())
	fmt.Println()

	fmt.Println("maintenance diary (the public experimental record, §4.5):")
	shown := 0
	for _, e := range out.Diary {
		fmt.Printf("  year %5.1f  %s\n", centuryscale.ToYears(e.At), e.What)
		shown++
		if shown == 25 && len(out.Diary) > 30 {
			fmt.Printf("  ... %d further entries ...\n", len(out.Diary)-shown)
			break
		}
	}
	fmt.Println()
	fmt.Println("Cost by category:")
	for cat, amount := range out.Ledger.ByCategory() {
		fmt.Printf("  %-18s %v\n", cat, amount)
	}
	fmt.Println()
	fmt.Println("The diary is the deliverable: \"the nature of a 50-year experiment is such")
	fmt.Println("that those who start it will most likely be retired by the time it is")
	fmt.Println("complete\" — the record is what crosses the generations.")
}
