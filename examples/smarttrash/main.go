// Smarttrash: the Seoul case study from §2 — what a city actually buys
// when bin-fill telemetry replaces a fixed collection schedule. The paper
// reports 66% less overflow and 83% lower collection cost; this example
// regenerates the comparison on a synthetic district.
package main

import (
	"fmt"

	"centuryscale"
)

func main() {
	cfg := centuryscale.DefaultBins()
	fixed, sensor := centuryscale.SeoulComparison(cfg, 365, 42)

	fmt.Printf("district: %d bins, mean fill time %.0f days, $%.2f per collection visit\n",
		cfg.Bins, cfg.MeanFillDays, float64(cfg.TripCents)/100)
	fmt.Println()
	fmt.Printf("%-24s %16s %16s\n", "one simulated year", "fixed schedule", "sensor-driven")
	fmt.Printf("%-24s %16d %16d\n", "collections", fixed.Collections, sensor.Collections)
	fmt.Printf("%-24s %16d %16d\n", "overflow events", fixed.OverflowEvents, sensor.OverflowEvents)
	fmt.Printf("%-24s %16v %16v\n", "cost",
		centuryscale.Cents(fixed.CostCents), centuryscale.Cents(sensor.CostCents))
	fmt.Println()

	overflowCut := 1 - float64(sensor.OverflowEvents)/float64(fixed.OverflowEvents)
	costCut := 1 - float64(sensor.CostCents)/float64(fixed.CostCents)
	fmt.Printf("overflow reduction: %.0f%%   (paper: 66%%)\n", overflowCut*100)
	fmt.Printf("cost reduction:     %.0f%%   (paper: 83%%)\n", costCut*100)
	fmt.Println()
	fmt.Println("Why it works: bins fill at wildly uneven rates, so any blind schedule")
	fmt.Println("over-serves the slow bins and overflows the fast ones. Telemetry plus a")
	fmt.Println("compacting bin collects each bin exactly when needed.")
}
