// Bridgemonitor: the paper's flagship device (§1, §4.1) — a sensor cast
// into a bridge deck that reports the concrete's health and powers itself
// from the corrosion of the rebar it is watching, for as long as the
// structure lasts. This example walks the structure's whole service life
// and shows the coupled physics: the health signal an EMI sensor reads,
// the chloride front creeping toward the rebar, and the harvest budget
// the corrosion cell provides.
package main

import (
	"fmt"

	"centuryscale"
)

func main() {
	for _, s := range []centuryscale.Structure{centuryscale.Bridge(), centuryscale.RoadDeck()} {
		fmt.Printf("structure: %s (service life %.1f years; paper cites %s)\n",
			s.Name, s.ServiceLifeYears(), paperMedian(s.Name))
		fmt.Printf("  corrosion initiates at year %.1f (chloride reaches rebar at %.0f mm cover)\n",
			s.InitiationYears(), s.CoverMM)
		fmt.Printf("  %6s  %12s  %16s  %12s\n", "year", "health-index", "chloride@rebar", "harvest-µW")
		for _, y := range []float64{1, 5, 15, 25, 35, 45, 55} {
			at := centuryscale.Years(y)
			fmt.Printf("  %6.0f  %12.2f  %16.2f  %12.1f\n",
				y, s.HealthIndex(at), s.ChlorideAt(s.CoverMM, at),
				s.HarvestMicroWatts(100, 0.5, at))
		}
		fmt.Println()
	}

	fmt.Println("The coupling the paper highlights: the same electrochemistry that ends the")
	fmt.Println("structure's life powers the sensor that reports on it. Harvest power rises")
	fmt.Println("exactly when the health signal starts to matter most.")
}

func paperMedian(name string) string {
	if name == "bridge" {
		return "50 y median"
	}
	return "25 y median"
}
