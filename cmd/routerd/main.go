// Command routerd is the third-party network's router: it accepts raw
// LoRaWAN uplinks POSTed by hotspots on /uplink, MIC-verifies them,
// enforces frame-counter freshness, charges the prepaid data-credit
// wallet, and forwards the decrypted 24-byte telemetry to the owner's
// endpoint.
//
//	routerd -listen :9000 -abp-master 0123456789abcdef \
//	        -endpoint http://127.0.0.1:8080 -credits 500000
//
// The ABP master must be exactly 16 bytes; device session keys derive
// from it and each frame's DevAddr. The credit balance is the paper's
// §4.4 prepayment: when it runs dry the router answers 402 and the
// hotspots stop getting paid.
package main

import (
	"flag"
	"log"
	"net/http"

	"centuryscale/internal/daemon"
	"centuryscale/internal/helium"
)

func main() {
	var (
		listen   = flag.String("listen", ":9000", "HTTP listen address for hotspot uplinks")
		master   = flag.String("abp-master", "", "16-byte ABP master secret (required)")
		endpoint = flag.String("endpoint", "http://127.0.0.1:8080", "owner endpoint base URL")
		credits  = flag.Int64("credits", 500000, "initial data-credit balance (the $5 wallet)")
	)
	flag.Parse()
	if len(*master) != 16 {
		log.Fatalf("routerd: -abp-master must be exactly 16 bytes, got %d", len(*master))
	}

	wallet := helium.NewWallet(*credits)
	router, err := helium.NewRouter([]byte(*master), wallet)
	if err != nil {
		log.Fatalf("routerd: %v", err)
	}
	uplink := &daemon.HTTPUplink{URL: *endpoint}
	handler := daemon.RouterHandler(router, uplink.Send)

	log.Printf("routerd: listening on %s, forwarding to %s, %d credits", *listen, *endpoint, wallet.Balance())
	if err := http.ListenAndServe(*listen, handler); err != nil {
		log.Fatalf("routerd: %v", err)
	}
}
