// Command routerd is the third-party network's router: it accepts raw
// LoRaWAN uplinks POSTed by hotspots on /uplink, MIC-verifies them,
// enforces frame-counter freshness, charges the prepaid data-credit
// wallet, and forwards the decrypted 24-byte telemetry to the owner's
// endpoint.
//
//	routerd -listen :9000 -abp-master 0123456789abcdef \
//	        -endpoint http://127.0.0.1:8080 -credits 500000
//
// The ABP master must be exactly 16 bytes; device session keys derive
// from it and each frame's DevAddr. The credit balance is the paper's
// §4.4 prepayment: when it runs dry the router answers 402 and the
// hotspots stop getting paid.
//
// Delivery to the owner's endpoint rides the same resilient uplink as
// the gateways: retries, circuit breaking, and a bounded
// store-and-forward queue (-queue) that SIGINT/SIGTERM flush before
// exit. The -chaos-* flags inject a seeded fault schedule into endpoint
// delivery for outage drills.
//
// With -cluster-peers the router fronts a replicated endpoint fleet
// instead of a single endpoint: each verified frame is forwarded to the
// R owner replicas of its device partition and acknowledged only after
// W durable appends (WAL-before-ack across machines). The router then
// also serves the cluster's public face — POST /ingest, GET /history
// (merged + read-repaired), GET /status — next to /uplink, and its
// -debug-addr /healthz aggregates per-node heartbeat state: degraded
// while any node is down, failed only when a partition has lost every
// replica.
//
//	routerd -listen :9000 -abp-master 0123456789abcdef \
//	        -cluster-peers http://n0:8080,http://n1:8080,http://n2:8080 \
//	        -replicas 2 -write-quorum 2 -cluster-secret $SECRET
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"centuryscale/internal/cluster"
	"centuryscale/internal/daemon"
	"centuryscale/internal/helium"
	"centuryscale/internal/obs"
	"centuryscale/internal/resilience"
)

func main() {
	var (
		listen   = flag.String("listen", ":9000", "HTTP listen address for hotspot uplinks")
		master   = flag.String("abp-master", "", "16-byte ABP master secret (required)")
		endpoint = flag.String("endpoint", "http://127.0.0.1:8080", "owner endpoint base URL (single-endpoint mode)")
		credits  = flag.Int64("credits", 500000, "initial data-credit balance (the $5 wallet)")
		flushFor = flag.Duration("flush-timeout", 10*time.Second, "how long shutdown waits to drain the buffer")
	)
	rf := daemon.RegisterResilienceFlags()
	cf := daemon.RegisterChaosFlags()
	clf := daemon.RegisterClusterFlags()
	of := daemon.RegisterObsFlags()
	flag.Parse()
	if len(*master) != 16 {
		log.Fatalf("routerd: -abp-master must be exactly 16 bytes, got %d", len(*master))
	}

	wallet := helium.NewWallet(*credits)
	router, err := helium.NewRouter([]byte(*master), wallet)
	if err != nil {
		log.Fatalf("routerd: %v", err)
	}
	if cf.Enabled() {
		log.Printf("routerd: chaos injection enabled (seed %d)", cf.Seed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	health := obs.NewHealth()

	// Delivery target: one endpoint, or the replicated fleet.
	var (
		inner resilience.Sender
		coord *cluster.Coordinator
	)
	if clf.Enabled() {
		coord, err = clf.Coordinator(rf.Config())
		if err != nil {
			log.Fatalf("routerd: %v", err)
		}
		coord.RegisterHealth(health)
		coord.RegisterMetrics(reg)
		go coord.RunHeartbeats(ctx, clf.HeartbeatEvery)
		inner = daemon.ClusterSender(coord)
		log.Printf("routerd: cluster mode, R=%d W=%d over %s", clf.Replicas, clf.WriteQuorum, clf.Peers)
	} else {
		inner = &daemon.HTTPUplink{URL: *endpoint, Client: cf.HTTPClient(10 * time.Second)}
	}
	up := resilience.NewUplink(inner, rf.Config())
	up.RegisterMetrics(reg, "router_uplink")

	handler := daemon.RouterHandler(router, up.Send)
	if coord != nil {
		// The cluster's public face rides the same listener as /uplink.
		mux := http.NewServeMux()
		mux.Handle("POST /uplink", handler)
		mux.Handle("/", coord.Handler())
		handler = mux
	}
	of.Serve(ctx, log.Printf, reg, health)

	srv := &http.Server{Addr: *listen, Handler: handler}
	var daemons sync.WaitGroup
	daemons.Add(1)
	go func() {
		defer daemons.Done()
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	target := *endpoint
	if coord != nil {
		target = "cluster " + clf.Peers
	}
	log.Printf("routerd: listening on %s, forwarding to %s, %d credits (queue %d)", *listen, target, wallet.Balance(), rf.Queue)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("routerd: %v", err)
	}
	// ListenAndServe returns when Shutdown *starts*; join the watcher so
	// Shutdown has actually drained before the flush below runs.
	stop()
	daemons.Wait()

	// In-flight uplinks are done (Shutdown waited); drain the buffer.
	flushCtx, cancel := context.WithTimeout(context.Background(), *flushFor)
	defer cancel()
	if err := up.Close(flushCtx); err != nil {
		log.Printf("routerd: shutdown flush: %v", err)
	}
	if coord != nil {
		if err := coord.Close(flushCtx); err != nil {
			log.Printf("routerd: cluster close: %v", err)
		}
		cs := coord.Stats()
		log.Printf("routerd: cluster acked=%d no-quorum=%d rejected=%d read-repaired=%d", cs.Acked, cs.NoQuorum, cs.Rejected, cs.RepairedRecords)
	}
	rs := router.Stats()
	u := up.Stats()
	log.Printf("routerd: done. delivered=%d bad-frames=%d replays=%d unfunded=%d credits-left=%d", rs.Delivered, rs.BadFrames, rs.Replays, rs.Unfunded, wallet.Balance())
	log.Printf("routerd: uplink sent=%d drained=%d retries=%d buffered=%d dropped-oldest=%d breaker-trips=%d", u.Sent, u.Drained, u.Retries, u.Buffered, u.Queue.DroppedOldest, u.Breaker.Trips)
}
