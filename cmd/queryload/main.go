// Command queryload is the smoke driver for the tiered read path: it
// pumps a multi-year virtual series into one endpointd (arrival stamps
// asserted via the cluster header, so the data clock — not the wall
// clock — paces retention), then proves the /query contract from the
// outside: every ingested point is covered by the windowed answer, the
// daily rollup tier actually engaged (the cheap path, not a raw scan),
// the query returns under the latency budget, and the answer bytes are
// stable — the supervising script SIGKILLs the daemon between two
// -mode verify runs and the second must reproduce the first exactly.
//
//	queryload -endpoint http://127.0.0.1:18090 -master fleet-secret \
//	          -cluster-secret smoke -mode ingest -devices 2 -points 730
//	queryload -endpoint http://127.0.0.1:18090 -mode verify -devices 2 \
//	          -points 730 -answer /tmp/answer.json -max-millis 10
//
// Exit status 0 means every check held.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"centuryscale/internal/cloud"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

func main() {
	var (
		endpoint  = flag.String("endpoint", "http://127.0.0.1:18090", "endpointd base URL")
		master    = flag.String("master", "", "fleet master secret (required for -mode ingest)")
		secret    = flag.String("cluster-secret", "", "cluster secret authorizing arrival stamps (required for -mode ingest)")
		mode      = flag.String("mode", "", "ingest | verify")
		devices   = flag.Int("devices", 2, "device fleet size")
		points    = flag.Int("points", 730, "points per device")
		cadence   = flag.Duration("cadence", 24*time.Hour, "virtual arrival spacing between a device's points")
		step      = flag.Duration("step", 7*24*time.Hour, "aggregation window width for -mode verify")
		answer    = flag.String("answer", "", "answer file: written on first verify, byte-compared on the next (the crash-equivalence check)")
		maxMillis = flag.Int("max-millis", 10, "latency budget per /query request (best of 5)")
		retainRaw = flag.Duration("retain-raw", 720*time.Hour, "the daemon's raw retention window (verify waits for the fold watermark to reach its terminal position)")
		timeout   = flag.Duration("timeout", 30*time.Second, "wait budget for the terminal fold")
	)
	flag.Parse()

	d := &driver{
		endpoint: *endpoint,
		master:   []byte(*master),
		secret:   *secret,
		devices:  *devices,
		points:   *points,
		cadence:  *cadence,
		step:     *step,
		client:   &http.Client{Timeout: 10 * time.Second},
	}
	switch *mode {
	case "ingest":
		if *master == "" || *secret == "" {
			log.Fatal("queryload: -mode ingest requires -master and -cluster-secret")
		}
		d.ingest()
	case "verify":
		d.verify(*answer, *maxMillis, *retainRaw, *timeout)
	default:
		log.Fatalf("queryload: unknown -mode %q (want ingest or verify)", *mode)
	}
}

type driver struct {
	endpoint string
	master   []byte
	secret   string
	devices  int
	points   int
	cadence  time.Duration
	step     time.Duration
	client   *http.Client
}

func (d *driver) deviceID(i int) lpwan.EUI64 { return lpwan.EUIFromUint64(uint64(i) + 1) }

// horizon is the query range end: past the last stamped arrival (which
// lands at points*cadence + device offset) so every point is covered.
func (d *driver) horizon() time.Duration {
	return d.cadence*time.Duration(d.points) + time.Hour
}

// ingest pumps the virtual series: per device, one sealed packet every
// -cadence of data time, arrival asserted via the cluster stamp header.
// A small per-device offset keeps arrivals distinct without breaking
// determinism.
func (d *driver) ingest() {
	start := time.Now()
	for i := 0; i < d.points; i++ {
		for dev := 0; dev < d.devices; dev++ {
			id := d.deviceID(dev)
			wire, err := telemetry.Packet{
				Device: id, Seq: uint32(i + 1), Sensor: telemetry.SensorStrain,
				Value: float32(i%100) / 2,
			}.Seal(telemetry.DeriveKey(d.master, id))
			if err != nil {
				log.Fatalf("queryload: seal: %v", err)
			}
			arrival := d.cadence*time.Duration(i+1) + time.Duration(dev)*time.Minute
			req, err := http.NewRequest("POST", d.endpoint+"/ingest", bytes.NewReader(wire))
			if err != nil {
				log.Fatalf("queryload: %v", err)
			}
			req.Header.Set(cloud.ClusterSecretHeader, d.secret)
			req.Header.Set(cloud.ClusterArrivalHeader, strconv.FormatInt(int64(arrival), 10))
			resp, err := d.client.Do(req)
			if err != nil {
				log.Fatalf("queryload: POST /ingest: %v", err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				log.Fatalf("queryload: POST /ingest device %d point %d returned %s", dev, i, resp.Status)
			}
		}
	}
	log.Printf("queryload: ingested %d points × %d devices (%v of data time) in %v",
		d.points, d.devices, d.cadence*time.Duration(d.points), time.Since(start).Round(time.Millisecond))
}

type queryAnswer struct {
	FoldedBeforeSeconds float64 `json:"folded_before_seconds"`
	Tiers               struct {
		Daily  int `json:"daily_buckets"`
		Hourly int `json:"hourly_buckets"`
		Raw    int `json:"raw_points"`
	} `json:"tiers"`
	Windows []struct {
		Count uint64 `json:"count"`
	} `json:"windows"`
}

func (d *driver) queryPath(dev int) string {
	return fmt.Sprintf("%s/query?device=%s&step=%d&from=0&to=%d",
		d.endpoint, d.deviceID(dev), int64(d.step/time.Second), int64(d.horizon()/time.Second))
}

func (d *driver) get(url string) (int, []byte) {
	resp, err := d.client.Get(url)
	if err != nil {
		log.Fatalf("queryload: GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("queryload: reading %s: %v", url, err)
	}
	return resp.StatusCode, body
}

// verify proves the read-path contract: full coverage, daily tier
// engaged, latency within budget, and (via the answer file) the same
// bytes before and after a SIGKILL + WAL reboot.
func (d *driver) verify(answerFile string, maxMillis int, retainRaw, within time.Duration) {
	// The fold runs at the daemon's checkpoint cadence. Wait for the
	// watermark to reach its TERMINAL position — the high water mark
	// minus the retention window, hour-aligned — not merely for the
	// daily tier to engage: a mid-ingest fold already engages it, and
	// recording the answer before the last checkpoint would make the
	// post-reboot bytes (folded further) spuriously diverge.
	highWater := d.cadence*time.Duration(d.points) + time.Duration(d.devices-1)*time.Minute
	wantFolded := ((highWater - retainRaw) / time.Hour * time.Hour).Seconds()
	deadline := time.Now().Add(within)
	for {
		status, body := d.get(d.queryPath(0))
		var qa queryAnswer
		if status == http.StatusOK {
			if err := json.Unmarshal(body, &qa); err != nil {
				log.Fatalf("queryload: decoding /query: %v", err)
			}
			if qa.Tiers.Daily > 0 && qa.FoldedBeforeSeconds == wantFolded {
				break
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("queryload: fold never reached watermark %.0fs within %v (last status %d, folded %.0fs, daily %d)",
				wantFolded, within, status, qa.FoldedBeforeSeconds, qa.Tiers.Daily)
		}
		time.Sleep(200 * time.Millisecond)
	}

	var combined bytes.Buffer
	for dev := 0; dev < d.devices; dev++ {
		url := d.queryPath(dev)
		var body []byte
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 5; rep++ {
			t0 := time.Now()
			status, b := d.get(url)
			elapsed := time.Since(t0)
			if status != http.StatusOK {
				log.Fatalf("queryload: GET /query device %d returned %d: %s", dev, status, b)
			}
			if elapsed < best {
				best = elapsed
			}
			body = b
		}
		var qa queryAnswer
		if err := json.Unmarshal(body, &qa); err != nil {
			log.Fatalf("queryload: decoding /query: %v", err)
		}
		var covered uint64
		for _, w := range qa.Windows {
			covered += w.Count
		}
		if covered != uint64(d.points) {
			log.Fatalf("queryload: device %d answer covers %d points, ingested %d", dev, covered, d.points)
		}
		if qa.Tiers.Daily == 0 {
			log.Fatalf("queryload: device %d answered without the daily tier (tiers: %+v)", dev, qa.Tiers)
		}
		if budget := time.Duration(maxMillis) * time.Millisecond; best > budget {
			log.Fatalf("queryload: device %d /query took %v, budget %v", dev, best, budget)
		}
		log.Printf("queryload: device %d: %d points covered, tiers daily=%d hourly=%d raw=%d, folded_before=%.0fs, best latency %v",
			dev, covered, qa.Tiers.Daily, qa.Tiers.Hourly, qa.Tiers.Raw, qa.FoldedBeforeSeconds, best.Round(time.Microsecond))
		combined.Write(body)
	}

	// The other two routes must answer, and with the expected shape.
	if status, body := d.get(fmt.Sprintf("%s/query/uptime?device=%s&horizon=%d",
		d.endpoint, d.deviceID(0), int64(d.horizon()/time.Second))); status != http.StatusOK {
		log.Fatalf("queryload: /query/uptime returned %d: %s", status, body)
	} else {
		var up struct {
			WeeklyUptime float64 `json:"weekly_uptime"`
		}
		if err := json.Unmarshal(body, &up); err != nil || up.WeeklyUptime <= 0 {
			log.Fatalf("queryload: /query/uptime gave %s (err %v)", body, err)
		}
	}
	if status, body := d.get(fmt.Sprintf("%s/query/gaps?k=%d", d.endpoint, d.devices)); status != http.StatusOK {
		log.Fatalf("queryload: /query/gaps returned %d: %s", status, body)
	} else {
		var gaps []struct {
			Device string `json:"device"`
		}
		if err := json.Unmarshal(body, &gaps); err != nil || len(gaps) != d.devices {
			log.Fatalf("queryload: /query/gaps gave %d entries, want %d: %s", len(gaps), d.devices, body)
		}
	}

	// Crash equivalence: the first verify records the answer bytes, the
	// post-kill verify must reproduce them exactly — same buckets, same
	// watermark, same windows.
	if answerFile != "" {
		if prev, err := os.ReadFile(answerFile); err == nil {
			if !bytes.Equal(prev, combined.Bytes()) {
				log.Fatalf("queryload: answer diverged from %s after reboot (%d vs %d bytes)",
					answerFile, len(prev), combined.Len())
			}
			log.Printf("queryload: answer byte-identical to pre-kill record (%d bytes)", combined.Len())
		} else if err := os.WriteFile(answerFile, combined.Bytes(), 0o644); err != nil {
			log.Fatalf("queryload: writing %s: %v", answerFile, err)
		} else {
			log.Printf("queryload: answer recorded to %s (%d bytes)", answerFile, combined.Len())
		}
	}
	log.Printf("queryload: OK — %d devices served from the rollup tiers within %dms", d.devices, maxMillis)
}
