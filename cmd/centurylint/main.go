// Command centurylint runs the repository's invariant analyzers — the
// multichecker for the suite in internal/lint. It exists because the
// properties the century-scale argument rests on (virtual time, seeded
// randomness, WAL durability, stall-free critical sections, goroutine
// lifetimes, the int64-nanosecond horizon) are exactly the ones that
// erode silently under refactoring; this gate makes the erosion loud at
// merge time instead of visible in a replay gap years in.
//
// Usage:
//
//	centurylint [-only name,name] [-list] [-json] [-deterministic] \
//	            [-baseline file] [-write-baseline file] [packages]
//
// With no package patterns, ./... is checked. The driver first
// summarizes every loaded package into one cross-package call-summary
// index (the dataflow pre-pass), then runs the analyzers in suite order
// per package — waiveraudit last, consuming the suppression log the
// others populate. Under -only the waiver staleness check is disabled:
// a directive for an analyzer that did not run cannot be judged stale.
//
// Output is file:line:col: message (analyzer) — the conventional vet
// format — or, with -json, a stable sorted JSON document. -baseline
// compares the findings against a committed baseline file and fails
// only on findings not in it (matched by file, analyzer, and message,
// ignoring line numbers, so unrelated edits don't shift the gate);
// -write-baseline records the current findings as the new baseline.
// Exit status is 1 when any (non-baselined) diagnostic is reported, 2
// on a loading or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"centuryscale/internal/lint"
	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/dataflow"
	"centuryscale/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// A Finding is one diagnostic in the -json / baseline format.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// An AnalyzerTiming is one analyzer's wall time summed across every
// package it ran on, in microseconds.
type AnalyzerTiming struct {
	Analyzer string `json:"analyzer"`
	Micros   int64  `json:"micros"`
}

// A Report is the document -json emits and baseline files hold. Notes
// carry non-finding caveats (e.g. "waiver staleness not evaluated" on
// partial runs); omitempty keeps baseline files — always written from
// full-suite full-tree runs, which produce no notes or timings —
// byte-identical in format. Timings appear only on the -json output
// path (slowest first; zeroed under -deterministic so the golden test
// can pin the bytes) so lint runtime can be profiled as the suite
// grows.
type Report struct {
	Version  int              `json:"version"`
	Findings []Finding        `json:"findings"`
	Notes    []string         `json:"notes,omitempty"`
	Timings  []AnalyzerTiming `json:"timings,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("centurylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as a stable JSON document")
	deterministic := fs.Bool("deterministic", false, "zero the per-analyzer timings in -json output, making it byte-stable across runs")
	baseline := fs.String("baseline", "", "fail only on findings not present in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write the current findings to this baseline file and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	// Directive words come from the full suite even under -only, so
	// waiveraudit never misreads a deselected analyzer's waiver as an
	// unknown directive.
	directives := make(map[string]string)
	for _, a := range analyzers {
		if a.Directive != "" {
			directives[a.Directive] = a.Name
		}
	}

	onlyMode := *only != ""
	if onlyMode {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			var unknown []string
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(stderr, "centurylint: unknown analyzer(s): %s\n", strings.Join(unknown, ", "))
			return 2
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "centurylint: %v\n", err)
		return 2
	}

	// Dataflow pre-pass: one summary index over every loaded package,
	// resolved to a transitive fixpoint, so cross-package analyzers see
	// the whole call graph regardless of package load order.
	index := dataflow.NewIndex()
	for _, pkg := range pkgs {
		index.Add(dataflow.Summarize(pkg.Info, pkg.Files))
	}
	index.Resolve()

	// Staleness accounting is only sound when the full suite runs over
	// the full tree: under -only a waiver for a deselected analyzer
	// would absorb nothing, and on a package subset a waiver whose
	// finding depends on cross-package summaries (a lock-held call into
	// an unloaded package's WAL) would absorb nothing either. Both would
	// be misreported as stale.
	var log *analysis.SuppressionLog
	fullTree := len(fs.Args()) == 0 || (len(fs.Args()) == 1 && fs.Args()[0] == "./...")
	if !onlyMode && fullTree {
		log = analysis.NewSuppressionLog()
	}

	cwd, _ := os.Getwd()

	// With staleness accounting off, a waived file in the run would
	// silently skip its audit — a partial run could be mistaken for a
	// clean one. Surface every such file as a note instead.
	var notes []string
	if log == nil {
		notes = waiverNotes(cwd, pkgs)
	}
	var findings []Finding
	elapsed := make(map[string]time.Duration)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:     a,
				Fset:         pkg.Fset,
				Files:        pkg.Files,
				Pkg:          pkg.Types,
				TypesInfo:    pkg.Info,
				Summaries:    index,
				Suppressions: log,
				Directives:   directives,
				Report: func(d analysis.Diagnostic) {
					p := pkg.Fset.Position(d.Pos)
					findings = append(findings, Finding{
						File:     relPath(cwd, p.Filename),
						Line:     p.Line,
						Col:      p.Column,
						Analyzer: a.Name,
						Message:  d.Message,
					})
				},
			}
			start := time.Now()
			err := a.Run(pass)
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				fmt.Fprintf(stderr, "centurylint: %s on %s: %v\n", a.Name, pkg.Path, err)
				return 2
			}
		}
	}
	sortFindings(findings)

	// Per-analyzer wall time, slowest first, for -json output only:
	// baseline files must stay byte-identical across machines, and the
	// plain-text gate has no use for it. -deterministic zeroes the
	// microseconds (collapsing the order to by-name) so the golden and
	// byte-stability tests can pin the document.
	var timings []AnalyzerTiming
	if *jsonOut {
		for _, a := range analyzers {
			us := elapsed[a.Name].Microseconds()
			if *deterministic {
				us = 0
			}
			timings = append(timings, AnalyzerTiming{Analyzer: a.Name, Micros: us})
		}
		sort.Slice(timings, func(i, j int) bool {
			if timings[i].Micros != timings[j].Micros {
				return timings[i].Micros > timings[j].Micros
			}
			return timings[i].Analyzer < timings[j].Analyzer
		})
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintf(stderr, "centurylint: %v\n", err)
			return 2
		}
		werr := writeReport(f, findings, nil, nil)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "centurylint: write baseline: %v\n", werr)
			return 2
		}
		fmt.Fprintf(stderr, "centurylint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}

	if *baseline != "" {
		known, stale, err := diffBaseline(*baseline, findings)
		if err != nil {
			fmt.Fprintf(stderr, "centurylint: %v\n", err)
			return 2
		}
		findings = known
		if stale > 0 {
			fmt.Fprintf(stderr, "centurylint: %d baseline entr(y|ies) no longer fire; refresh with make lint-baseline\n", stale)
		}
	}

	if *jsonOut {
		if err := writeReport(stdout, findings, notes, timings); err != nil {
			fmt.Fprintf(stderr, "centurylint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
		for _, n := range notes {
			fmt.Fprintf(stderr, "centurylint: note: %s\n", n)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "centurylint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// relPath makes filename stable across checkouts: repo-relative with
// forward slashes when under cwd, unchanged otherwise.
func relPath(cwd, filename string) string {
	if cwd == "" {
		return filepath.ToSlash(filename)
	}
	rel, err := filepath.Rel(cwd, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// sortFindings orders findings fully deterministically, so text, JSON,
// and baseline output are byte-stable across runs and machines.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// writeReport encodes findings as the versioned JSON document. The
// input must already be sorted; encoding adds nothing nondeterministic,
// which the byte-stability test pins (timings are the one intentional
// exception, and -deterministic zeroes them).
func writeReport(w io.Writer, findings []Finding, notes []string, timings []AnalyzerTiming) error {
	if findings == nil {
		findings = []Finding{} // encode as [], never null
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Version: 1, Findings: findings, Notes: notes, Timings: timings})
}

// waiverNotes lists every loaded file carrying a //lint: waiver, for
// runs where staleness accounting is off (-only, or a package subset):
// the waivers in those files were not audited, and the note keeps a
// partial run from passing for a clean full one.
func waiverNotes(cwd string, pkgs []*loader.Package) []string {
	seen := make(map[string]bool)
	var files []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//lint:") {
						continue
					}
					name := relPath(cwd, pkg.Fset.Position(c.Pos()).Filename)
					if !seen[name] {
						seen[name] = true
						files = append(files, name)
					}
				}
			}
		}
	}
	sort.Strings(files)
	notes := make([]string, 0, len(files))
	for _, f := range files {
		notes = append(notes,
			f+": waiver staleness not evaluated (partial run: -only or a package subset); run the full suite over ./... to audit waivers")
	}
	return notes
}

// baselineKey matches findings to baseline entries on everything except
// position: line and column shift with every unrelated edit, but a
// waived-in-baseline finding is the same finding wherever it moves
// within its file.
func baselineKey(f Finding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// diffBaseline splits findings into those NOT covered by the baseline
// (returned for reporting) and counts baseline entries that no longer
// fire. Matching is a multiset: two identical findings need two
// baseline entries.
func diffBaseline(path string, findings []Finding) ([]Finding, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, 0, fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.Version != 1 {
		return nil, 0, fmt.Errorf("baseline %s: unsupported version %d", path, base.Version)
	}
	budget := make(map[string]int)
	for _, f := range base.Findings {
		budget[baselineKey(f)]++
	}
	var novel []Finding
	for _, f := range findings {
		k := baselineKey(f)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		novel = append(novel, f)
	}
	stale := 0
	for _, n := range budget {
		stale += n
	}
	return novel, stale, nil
}
