// Command centurylint runs the repository's invariant analyzers — the
// multichecker for the suite in internal/lint. It exists because the
// properties the century-scale argument rests on (virtual time, seeded
// randomness, WAL durability, stall-free critical sections) are exactly
// the ones that erode silently under refactoring; this gate makes the
// erosion loud at merge time instead of visible in a replay gap years in.
//
// Usage:
//
//	centurylint [-only name,name] [-list] [packages]
//
// With no package patterns, ./... is checked. Exit status is 1 when any
// diagnostic is reported, 2 on a loading or usage error. Diagnostics
// print as file:line:col: message (analyzer), the conventional vet
// format, so editors and CI annotate them natively.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"centuryscale/internal/lint"
	"centuryscale/internal/lint/analysis"
	"centuryscale/internal/lint/loader"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("centurylint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		if len(keep) > 0 {
			var unknown []string
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "centurylint: unknown analyzer(s): %s\n", strings.Join(unknown, ", "))
			return 2
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "centurylint: %v\n", err)
		return 2
	}

	found := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report: func(d analysis.Diagnostic) {
					found++
					fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, a.Name)
				},
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "centurylint: %s on %s: %v\n", a.Name, pkg.Path, err)
				return 2
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "centurylint: %d finding(s)\n", found)
		return 1
	}
	return 0
}
