package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestListAnalyzers pins the suite size and order-stability of -list:
// thirteen analyzers, waiveraudit last.
func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 13 {
		t.Fatalf("-list printed %d analyzers, want 13:\n%s", len(lines), out.String())
	}
	wantOrder := []string{
		"simdeterminism", "lockedio", "syncerr", "seedflow",
		"centurytime", "goroleak", "ctxflow",
		"lockorder", "atomicmix", "lifecycle",
		"allocbudget", "allocfree", "waiveraudit",
	}
	for i, name := range wantOrder {
		if !strings.HasPrefix(lines[i], name) {
			t.Errorf("line %d = %q, want analyzer %s", i, lines[i], name)
		}
	}
}

// TestReportGolden pins the -json / baseline byte format: sorted
// findings, two-space indent, version header, [] (not null) when empty.
func TestReportGolden(t *testing.T) {
	scrambled := []Finding{
		{File: "b.go", Line: 9, Col: 2, Analyzer: "goroleak", Message: "m2"},
		{File: "a.go", Line: 20, Col: 1, Analyzer: "lockedio", Message: "m1"},
		{File: "a.go", Line: 3, Col: 7, Analyzer: "ctxflow", Message: "m0"},
		{File: "a.go", Line: 3, Col: 7, Analyzer: "centurytime", Message: "m3"},
	}
	sortFindings(scrambled)
	var buf bytes.Buffer
	if err := writeReport(&buf, scrambled, nil, nil); err != nil {
		t.Fatal(err)
	}
	const want = `{
  "version": 1,
  "findings": [
    {
      "file": "a.go",
      "line": 3,
      "col": 7,
      "analyzer": "centurytime",
      "message": "m3"
    },
    {
      "file": "a.go",
      "line": 3,
      "col": 7,
      "analyzer": "ctxflow",
      "message": "m0"
    },
    {
      "file": "a.go",
      "line": 20,
      "col": 1,
      "analyzer": "lockedio",
      "message": "m1"
    },
    {
      "file": "b.go",
      "line": 9,
      "col": 2,
      "analyzer": "goroleak",
      "message": "m2"
    }
  ]
}
`
	if buf.String() != want {
		t.Errorf("report bytes changed:\n got: %q\nwant: %q", buf.String(), want)
	}

	buf.Reset()
	if err := writeReport(&buf, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	const wantEmpty = "{\n  \"version\": 1,\n  \"findings\": []\n}\n"
	if buf.String() != wantEmpty {
		t.Errorf("empty report = %q, want %q", buf.String(), wantEmpty)
	}

	// Notes ride along with omitempty: present on partial runs, absent —
	// and therefore byte-identical to the old format — in baselines.
	buf.Reset()
	if err := writeReport(&buf, nil, []string{"a.go: waiver staleness not evaluated"}, nil); err != nil {
		t.Fatal(err)
	}
	const wantNotes = "{\n  \"version\": 1,\n  \"findings\": [],\n  \"notes\": [\n    \"a.go: waiver staleness not evaluated\"\n  ]\n}\n"
	if buf.String() != wantNotes {
		t.Errorf("notes report = %q, want %q", buf.String(), wantNotes)
	}

	// Timings ride along the same way: present on -json runs, absent in
	// baselines (which writeBaseline always calls with nil).
	buf.Reset()
	timings := []AnalyzerTiming{{Analyzer: "lockedio", Micros: 1200}, {Analyzer: "syncerr", Micros: 40}}
	if err := writeReport(&buf, nil, nil, timings); err != nil {
		t.Fatal(err)
	}
	const wantTimings = "{\n  \"version\": 1,\n  \"findings\": [],\n  \"timings\": [\n    {\n      \"analyzer\": \"lockedio\",\n      \"micros\": 1200\n    },\n    {\n      \"analyzer\": \"syncerr\",\n      \"micros\": 40\n    }\n  ]\n}\n"
	if buf.String() != wantTimings {
		t.Errorf("timings report = %q, want %q", buf.String(), wantTimings)
	}
}

// TestPartialRunWaiverNote pins the satellite contract for partial
// runs: staleness accounting is off under -only, so a run touching a
// waived file must say so in -json instead of passing for a clean full
// run. internal/cloud carries committed //lint: waivers.
func TestPartialRunWaiverNote(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-only", "syncerr", "../../internal/cloud/..."}, &out, &errOut)
	if code == 2 {
		t.Fatalf("driver error: %s", errOut.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(rep.Notes) == 0 {
		t.Fatal("no notes on a -only run over waived files; want a staleness-not-evaluated note")
	}
	for _, n := range rep.Notes {
		if !strings.Contains(n, "waiver staleness not evaluated") {
			t.Errorf("unexpected note: %q", n)
		}
	}

	// The same run over the full suite and full tree audits waivers for
	// real — no notes. (Exercised by the sweep in `make lint`; here just
	// pin that full-tree did not regress into emitting notes by checking
	// the writeBaseline path stays note-free via TestReportGolden.)
}

// TestJSONByteStableAcrossRuns drives the whole pipeline — go list,
// type-check, summary pre-pass, the full suite — twice over real
// packages and requires byte-identical -json output. -deterministic
// zeroes the per-analyzer timings, the one intentionally
// run-dependent part of the document.
func TestJSONByteStableAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	runOnce := func() (string, int) {
		var out, errOut bytes.Buffer
		code := run([]string{"-json", "-deterministic", "../../internal/sim/...", "../../internal/cloud/..."}, &out, &errOut)
		if code == 2 {
			t.Fatalf("driver error: %s", errOut.String())
		}
		return out.String(), code
	}
	first, code1 := runOnce()
	second, code2 := runOnce()
	if first != second || code1 != code2 {
		t.Errorf("output not byte-stable across runs:\n run1 (exit %d):\n%s\n run2 (exit %d):\n%s",
			code1, first, code2, second)
	}
	var rep Report
	if err := json.Unmarshal([]byte(first), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if rep.Version != 1 {
		t.Errorf("report version = %d, want 1", rep.Version)
	}
	// Every analyzer that ran appears, zeroed and therefore name-sorted.
	if len(rep.Timings) != 13 {
		t.Fatalf("timings = %+v, want 13 entries", rep.Timings)
	}
	for i, tm := range rep.Timings {
		if tm.Micros != 0 {
			t.Errorf("timings[%d].Micros = %d, want 0 under -deterministic", i, tm.Micros)
		}
		if i > 0 && rep.Timings[i-1].Analyzer > tm.Analyzer {
			t.Errorf("timings not name-sorted at %d: %q > %q", i, rep.Timings[i-1].Analyzer, tm.Analyzer)
		}
	}
}

// TestBaselineDiff exercises the multiset matching: line numbers are
// ignored, duplicate findings need duplicate entries, and entries that
// no longer fire are counted stale.
func TestBaselineDiff(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	base := Report{Version: 1, Findings: []Finding{
		{File: "a.go", Line: 10, Col: 1, Analyzer: "lockedio", Message: "m"},
		{File: "a.go", Line: 40, Col: 1, Analyzer: "lockedio", Message: "m"},
		{File: "gone.go", Line: 1, Col: 1, Analyzer: "syncerr", Message: "fixed"},
	}}
	data, _ := json.Marshal(base)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	current := []Finding{
		// Same two findings, both moved by unrelated edits.
		{File: "a.go", Line: 12, Col: 1, Analyzer: "lockedio", Message: "m"},
		{File: "a.go", Line: 44, Col: 1, Analyzer: "lockedio", Message: "m"},
		// A third copy exceeds the baseline's multiset budget.
		{File: "a.go", Line: 90, Col: 1, Analyzer: "lockedio", Message: "m"},
		// A genuinely new finding.
		{File: "b.go", Line: 5, Col: 1, Analyzer: "ctxflow", Message: "new"},
	}
	novel, stale, err := diffBaseline(path, current)
	if err != nil {
		t.Fatal(err)
	}
	if len(novel) != 2 {
		t.Fatalf("novel = %+v, want 2 entries", novel)
	}
	if novel[0].Line != 90 || novel[1].File != "b.go" {
		t.Errorf("unexpected novel findings: %+v", novel)
	}
	if stale != 1 {
		t.Errorf("stale = %d, want 1 (gone.go entry)", stale)
	}
}
