// Command hotspotd is a deliberately dumb third-party hotspot: it reads
// raw LoRaWAN frames from UDP and POSTs them to the network router. It
// holds no keys and makes no decisions — exactly the §4.2 trust split
// that lets anyone (including the deployment's own operator, as the
// hedge) run one.
//
//	hotspotd -listen :7100 -router http://127.0.0.1:9000
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os/signal"
	"syscall"

	"centuryscale/internal/daemon"
)

func main() {
	var (
		listen = flag.String("listen", ":7100", "UDP listen address for LoRaWAN frames")
		router = flag.String("router", "http://127.0.0.1:9000", "network router base URL")
	)
	flag.Parse()

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		log.Fatalf("hotspotd: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("hotspotd: forwarding %s -> %s", conn.LocalAddr(), *router)
	if err := daemon.ServeHotspot(ctx, conn, *router, nil); err != nil {
		log.Fatalf("hotspotd: %v", err)
	}
}
