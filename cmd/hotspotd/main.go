// Command hotspotd is a deliberately dumb third-party hotspot: it reads
// raw LoRaWAN frames from UDP and POSTs them to the network router. It
// holds no keys and makes no decisions — exactly the §4.2 trust split
// that lets anyone (including the deployment's own operator, as the
// hedge) run one.
//
//	hotspotd -listen :7100 -router http://127.0.0.1:9000
//
// Dumb does not mean lossy: the router uplink retries transient
// failures, trips a circuit breaker when the router is down, and buffers
// frames in a bounded store-and-forward queue (-queue), draining in
// order on recovery. SIGINT/SIGTERM flush the buffer before exit. The
// -chaos-* flags inject a seeded fault schedule for outage drills.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os/signal"
	"syscall"
	"time"

	"centuryscale/internal/daemon"
	"centuryscale/internal/obs"
	"centuryscale/internal/resilience"
)

func main() {
	var (
		listen   = flag.String("listen", ":7100", "UDP listen address for LoRaWAN frames")
		router   = flag.String("router", "http://127.0.0.1:9000", "network router base URL")
		flushFor = flag.Duration("flush-timeout", 10*time.Second, "how long shutdown waits to drain the buffer")
	)
	rf := daemon.RegisterResilienceFlags()
	cf := daemon.RegisterChaosFlags()
	of := daemon.RegisterObsFlags()
	flag.Parse()

	inner := &daemon.RouterUplink{URL: *router, Client: cf.HTTPClient(10 * time.Second)}
	if cf.Enabled() {
		log.Printf("hotspotd: chaos injection enabled (seed %d)", cf.Seed)
	}
	up := resilience.NewUplink(inner, rf.Config())

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		log.Fatalf("hotspotd: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	up.RegisterMetrics(reg, "uplink")
	if in := cf.Injector(); in != nil {
		in.RegisterMetrics(reg, "chaos")
	}
	health := obs.NewHealth()
	health.Register("uplink", func() error {
		if st := up.Stats(); st.State == resilience.BreakerOpen {
			return fmt.Errorf("breaker open; %d frames buffered", st.QueueLen)
		}
		return nil
	})
	of.Serve(ctx, log.Printf, reg, health)

	log.Printf("hotspotd: forwarding %s -> %s (queue %d)", conn.LocalAddr(), *router, rf.Queue)
	if err := daemon.ServeHotspotUplink(ctx, conn, up); err != nil {
		log.Fatalf("hotspotd: %v", err)
	}

	flushCtx, cancel := context.WithTimeout(context.Background(), *flushFor)
	defer cancel()
	if err := up.Close(flushCtx); err != nil {
		log.Printf("hotspotd: shutdown flush: %v", err)
	}
	u := up.Stats()
	log.Printf("hotspotd: done. sent=%d drained=%d retries=%d buffered=%d dropped-oldest=%d rejected=%d breaker-trips=%d", u.Sent, u.Drained, u.Retries, u.Buffered, u.Queue.DroppedOldest, u.RejectedPermanent, u.Breaker.Trips)
}
