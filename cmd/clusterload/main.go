// Command clusterload is the smoke driver for the replicated endpoint
// cluster: it pumps sealed telemetry through a cluster-mode router's
// POST /ingest, lets a seeded chaos schedule pick when — and which —
// node dies mid-stream, and then proves the cluster's contract from the
// outside: every acknowledged packet is readable back exactly once,
// health degrades (never fails) during the outage, and the recovery
// window serves a fresh burst with zero 503s.
//
// The driver does not kill processes itself; it writes the seeded
// verdict (the victim's node index) to -kill-marker and the supervising
// script executes it. That keeps the schedule deterministic in one
// place while the script owns process lifecycles:
//
//	clusterload -router http://127.0.0.1:19000 -master fleet-secret \
//	            -seed 7 -packets 300 -kill-marker /tmp/kill.marker
//
// Exit status 0 means the zero-acknowledged-loss invariant held.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"centuryscale/internal/chaos"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

func main() {
	var (
		router   = flag.String("router", "http://127.0.0.1:19000", "cluster-mode router base URL")
		master   = flag.String("master", "", "fleet master secret (must match the endpoints')")
		devices  = flag.Int("devices", 6, "device fleet size")
		packets  = flag.Int("packets", 300, "packets to push through the cluster")
		seed     = flag.Uint64("seed", 1, "chaos schedule seed (same seed = same kill point and victim)")
		nodes    = flag.Int("nodes", 3, "cluster size the schedule draws its victim from")
		killAt   = flag.Int("kill-after", 60, "accepted-ingest count before the seeded kill")
		marker   = flag.String("kill-marker", "", "file to write the victim node index to at the kill point (empty = no chaos)")
		deadline = flag.Duration("deadline", 2*time.Minute, "overall drain deadline")
	)
	flag.Parse()
	if *master == "" {
		log.Fatal("clusterload: -master is required")
	}

	d := &driver{
		router:  *router,
		master:  []byte(*master),
		devices: *devices,
		client:  &http.Client{Timeout: 5 * time.Second},
	}

	// The seeded schedule decides when the kill lands and who dies; the
	// supervising script only executes the verdict.
	killAfter, victim := -1, -1
	if *marker != "" {
		evs := chaos.PlanNodes(chaos.NodeConfig{
			Seed: *seed, Nodes: *nodes, Kills: 1, FirstKillAfter: *killAt,
		})
		if len(evs) == 0 || evs[0].Op != chaos.NodeKill {
			log.Fatalf("clusterload: schedule produced no kill: %v", evs)
		}
		killAfter, victim = evs[0].After, evs[0].Node
		log.Printf("clusterload: seed %d elects node %d to die at %d acked", *seed, victim, killAfter)
	}

	end := time.Now().Add(*deadline)
	var pending []packet
	killed := false
	for sent := 0; sent < *packets; sent++ {
		p := d.nextPacket()
		if !d.trySend(p) {
			pending = append(pending, p)
		}
		if !killed && killAfter >= 0 && len(d.acked) >= killAfter {
			killed = true
			if err := os.WriteFile(*marker, []byte(strconv.Itoa(victim)), 0o644); err != nil {
				log.Fatalf("clusterload: writing kill marker: %v", err)
			}
			log.Printf("clusterload: kill marker written at %d acked", len(d.acked))
			d.awaitHealth("degraded", 30*time.Second)
		}
	}
	log.Printf("clusterload: %d sent, %d acked first-try, %d refused during outage", *packets, len(d.acked), len(pending))

	// Drain the refused backlog: everything is eventually acknowledged
	// once the victim is back and replayed its WAL.
	for len(pending) > 0 {
		if time.Now().After(end) {
			log.Fatalf("clusterload: %d packets never acknowledged before deadline", len(pending))
		}
		still := pending[:0]
		for _, p := range pending {
			if !d.trySend(p) {
				still = append(still, p)
			}
		}
		pending = still
		if len(pending) > 0 {
			time.Sleep(200 * time.Millisecond)
		}
	}
	log.Printf("clusterload: backlog drained, %d total acked", len(d.acked))

	if killAfter >= 0 {
		d.awaitHealth("healthy", 30*time.Second)
	}
	d.verifyHistories()
	d.recoveryWindow(30)
	log.Printf("clusterload: OK — zero acknowledged loss across %d packets, %d devices", len(d.acked), *devices)
}

// packet keeps a sealed wire together with its identity so retries of
// a refused payload are attributed to the right (device, seq) on ack.
type packet struct {
	wire []byte
	dev  int
	seq  uint32
}

type driver struct {
	router  string
	master  []byte
	devices int
	client  *http.Client

	seqs  []uint32
	next  int
	acked []packet
}

func (d *driver) deviceID(i int) lpwan.EUI64 { return lpwan.EUIFromUint64(uint64(i) + 1) }

// nextPacket seals the next packet round-robin across the device fleet.
// Values encode the sequence number so verification can check payload
// integrity, not just presence.
func (d *driver) nextPacket() packet {
	if d.seqs == nil {
		d.seqs = make([]uint32, d.devices)
	}
	dev := d.next % d.devices
	d.next++
	d.seqs[dev]++
	id := d.deviceID(dev)
	wire, err := telemetry.Packet{
		Device: id, Seq: d.seqs[dev], Sensor: telemetry.SensorStrain,
		Value: float32(d.seqs[dev]),
	}.Seal(telemetry.DeriveKey(d.master, id))
	if err != nil {
		log.Fatalf("clusterload: seal: %v", err)
	}
	return packet{wire: wire, dev: dev, seq: d.seqs[dev]}
}

// trySend offers one packet to the cluster. Only a 202 counts as
// acknowledged; 503 (quorum missed) is the caller's cue to retry later;
// anything else is a driver or cluster bug.
func (d *driver) trySend(p packet) bool {
	resp, err := d.client.Post(d.router+"/ingest", "application/octet-stream", bytes.NewReader(p.wire))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		d.acked = append(d.acked, p)
		return true
	case http.StatusServiceUnavailable:
		return false
	default:
		log.Fatalf("clusterload: POST /ingest returned %s", resp.Status)
		return false
	}
}

// awaitHealth polls the router's /status until the cluster aggregate
// reaches want. During the outage that must be "degraded" — a cluster
// answering "failed" with every partition still covered, or "healthy"
// with a corpse in the ring, fails the smoke.
func (d *driver) awaitHealth(want string, within time.Duration) {
	deadline := time.Now().Add(within)
	var got string
	for time.Now().Before(deadline) {
		var status struct {
			Health string `json:"health"`
		}
		resp, err := d.client.Get(d.router + "/status")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&status)
			resp.Body.Close()
		}
		if err == nil {
			got = status.Health
			if got == want {
				log.Printf("clusterload: cluster health is %q", got)
				return
			}
			if want == "degraded" && got == "failed" {
				log.Fatalf("clusterload: health reported failed during a single-node outage")
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	log.Fatalf("clusterload: health never reached %q (last %q)", want, got)
}

// verifyHistories reads every device back through the router's merged,
// read-repairing GET /history and checks each acknowledged (device,
// seq) is present exactly once with its payload intact.
func (d *driver) verifyHistories() {
	type reading struct {
		Seq   uint32  `json:"seq"`
		Value float32 `json:"value"`
	}
	hists := make([]map[uint32]float32, d.devices)
	for dev := range hists {
		url := fmt.Sprintf("%s/history?device=%s", d.router, d.deviceID(dev))
		resp, err := d.client.Get(url)
		if err != nil {
			log.Fatalf("clusterload: GET /history: %v", err)
		}
		var recs []reading
		err = json.NewDecoder(resp.Body).Decode(&recs)
		resp.Body.Close()
		if err != nil {
			log.Fatalf("clusterload: decoding history for device %d: %v", dev, err)
		}
		hists[dev] = make(map[uint32]float32, len(recs))
		for _, r := range recs {
			if _, dup := hists[dev][r.Seq]; dup {
				log.Fatalf("clusterload: device %d stores seq %d twice", dev, r.Seq)
			}
			hists[dev][r.Seq] = r.Value
		}
	}
	for _, a := range d.acked {
		v, ok := hists[a.dev][a.seq]
		if !ok {
			log.Fatalf("clusterload: ACKNOWLEDGED PACKET LOST: device %d seq %d", a.dev, a.seq)
		}
		if v != float32(a.seq) {
			log.Fatalf("clusterload: device %d seq %d corrupted: value %v", a.dev, a.seq, v)
		}
	}
	log.Printf("clusterload: verified %d acknowledged packets across %d devices", len(d.acked), d.devices)
}

// recoveryWindow sends a fresh burst after the cluster has healed and
// requires every packet to be acknowledged first try: the recovery
// window must be 503-free.
func (d *driver) recoveryWindow(n int) {
	for i := 0; i < n; i++ {
		if !d.trySend(d.nextPacket()) {
			log.Fatalf("clusterload: recovery window not 503-free (packet %d of %d refused)", i+1, n)
		}
	}
	log.Printf("clusterload: recovery window clean (%d/%d acked first try)", n, n)
}
