// Command endpointd is the public data endpoint of the experiment: the
// centurysensors.com piece. It accepts raw 24-byte telemetry packets on
// POST /ingest, verifies and deduplicates them, and publishes the living
// status page on GET /.
//
//	endpointd -listen :8080 -master fleet-master-secret \
//	          -snapshot /var/lib/century/store.json -save-every 10m
//
// Device keys are derived from the fleet master secret and each device's
// EUI-64, so the endpoint needs no per-device database. With -snapshot
// set, state is restored at boot and saved atomically on the given
// interval and on clean shutdown — a 50-year service must assume its
// host will be replaced many times.
//
// The endpoint degrades gracefully instead of failing opaquely: more
// than -max-inflight concurrent ingests, or a failing snapshot disk,
// turn into 503 + Retry-After so resilient gateways buffer and retry
// rather than lose data. The -chaos-* flags wrap the whole server in a
// seeded fault schedule for overload drills.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"centuryscale/internal/chaos"
	"centuryscale/internal/cloud"
	"centuryscale/internal/daemon"
)

func main() {
	var (
		listen     = flag.String("listen", ":8080", "HTTP listen address")
		master     = flag.String("master", "", "fleet master secret (required)")
		snapshot   = flag.String("snapshot", "", "snapshot file for durable state (optional)")
		saveEvery  = flag.Duration("save-every", 10*time.Minute, "snapshot interval when -snapshot is set")
		maxInFl    = flag.Int("max-inflight", 256, "max concurrent ingests before shedding 503 (0 = unlimited)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed responses")
	)
	cf := daemon.RegisterChaosFlags()
	flag.Parse()
	if *master == "" {
		log.Fatal("endpointd: -master is required")
	}

	store := cloud.NewStore(cloud.StaticKeys([]byte(*master)))
	if *snapshot != "" {
		if err := store.LoadFile(*snapshot); err != nil {
			log.Fatalf("endpointd: restoring %s: %v", *snapshot, err)
		}
		log.Printf("endpointd: restored %d readings from %s", store.Count(), *snapshot)
	}

	server := cloud.NewServer(store, time.Now())
	server.SetIngestLimit(*maxInFl)
	server.SetRetryAfter(*retryAfter)
	var handler http.Handler = server
	if cf.Enabled() {
		log.Printf("endpointd: chaos injection enabled (seed %d)", cf.Seed)
		handler = chaos.Handler(handler, cf.Config())
	}

	srv := &http.Server{Addr: *listen, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *snapshot != "" {
		go func() {
			tick := time.NewTicker(*saveEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := store.SaveFile(*snapshot); err != nil {
						// Can't persist what we accept: shed until the
						// disk recovers so gateways buffer instead.
						log.Printf("endpointd: snapshot: %v (degrading ingest)", err)
						server.SetDegraded(true)
					} else if server.Degraded() {
						log.Printf("endpointd: snapshot recovered; accepting ingest again")
						server.SetDegraded(false)
					}
				}
			}
		}()
	}

	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("endpointd: listening on %s (max-inflight %d)", *listen, *maxInFl)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("endpointd: %v", err)
	}
	if *snapshot != "" {
		if err := store.SaveFile(*snapshot); err != nil {
			log.Fatalf("endpointd: final snapshot: %v", err)
		}
		log.Printf("endpointd: saved %d readings to %s", store.Count(), *snapshot)
	}
	log.Printf("endpointd: shed %d ingests while degraded/overloaded", server.Shed())
}
