// Command endpointd is the public data endpoint of the experiment: the
// centurysensors.com piece. It accepts raw 24-byte telemetry packets on
// POST /ingest, verifies and deduplicates them, and publishes the living
// status page on GET /.
//
//	endpointd -listen :8080 -master fleet-master-secret \
//	          -data-dir /var/lib/century/tsdb -shards 16 -wal-fsync always \
//	          -snapshot /var/lib/century/store.json -save-every 10m
//
// Device keys are derived from the fleet master secret and each device's
// EUI-64, so the endpoint needs no per-device database.
//
// Storage plays two complementary roles. With -data-dir set, every
// accepted reading is appended to a sharded write-ahead log before it is
// acknowledged (fsync per -wal-fsync), so a crash or kill loses zero
// acknowledged readings. With -snapshot set, the versioned-JSON snapshot
// remains the portable checkpoint — the artifact a 2060 operator can
// read with whatever tools exist then — written atomically every
// -save-every and on clean shutdown; each successful snapshot truncates
// the WAL segments it covers. Boot restores the snapshot, then replays
// the WAL over it. Run with both for a bounded WAL and a readable
// archive; -data-dir alone is fully durable but replays the whole WAL at
// boot; -snapshot alone restores the old snapshot-interval loss window.
//
// With -retain-raw set, storage becomes tiered: at every checkpoint,
// points older than the retention window are folded into hourly/daily
// aggregate buckets (-rollup-hourly / -rollup-daily) and their raw
// copies dropped — the century-scale read path. GET /query answers
// windowed aggregates from the tiers, /query/uptime weekly uptime, and
// /query/gaps the top-K silent devices; all three report which tier
// served them.
//
// The endpoint degrades gracefully instead of failing opaquely: more
// than -max-inflight concurrent ingests, a failing snapshot disk, or a
// failing WAL disk turn into 503 + Retry-After so resilient gateways
// buffer and retry rather than lose data. The -chaos-* flags wrap the
// whole server in a seeded fault schedule for overload drills.
//
// As a member of a replicated endpoint fleet (see routerd
// -cluster-peers), -cluster-secret arms the intra-cluster surface:
// /cluster/history and /cluster/replicate for read-repair, plus the
// coordinator's arrival-stamp override so every replica stores the same
// arrival time for a packet. Unset (the default), those routes 404.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"centuryscale/internal/chaos"
	"centuryscale/internal/cloud"
	"centuryscale/internal/daemon"
	"centuryscale/internal/obs"
	"centuryscale/internal/rollup"
	"centuryscale/internal/tsdb"
)

// checkpoint saves the snapshot and truncates the WAL behind it, folding
// the raw tail into rollup tiers first when tiered retention is on. The
// data clock (HighWater) drives the fold cutoff, so virtual-time
// workloads fold correctly too.
func checkpoint(store *cloud.Store, path string) error {
	if store.Rollups() != nil {
		return store.CheckpointAt(path, store.HighWater())
	}
	return store.Checkpoint(path)
}

func main() {
	var (
		listen     = flag.String("listen", ":8080", "HTTP listen address")
		master     = flag.String("master", "", "fleet master secret (required)")
		snapshot   = flag.String("snapshot", "", "snapshot file: portable JSON checkpoint (optional)")
		saveEvery  = flag.Duration("save-every", 10*time.Minute, "checkpoint interval when -snapshot is set")
		dataDir    = flag.String("data-dir", "", "storage directory for the sharded WAL (optional; enables crash-safe ingest)")
		shards     = flag.Int("shards", 16, "storage shard count (ingest concurrency)")
		walFsync   = flag.String("wal-fsync", "always", "WAL fsync policy: always | interval | never")
		walSyncEv  = flag.Duration("wal-sync-every", time.Second, "fsync cadence under -wal-fsync interval")
		compactEv  = flag.Duration("compact-every", 0, "background retention compaction interval (0 = off)")
		retainFull = flag.Duration("retain-full", cloud.DefaultRetention().FullResolutionWindow, "retention: full-resolution window")
		retainPer  = flag.Duration("retain-bucket", cloud.DefaultRetention().KeepOnePer, "retention: one reading kept per bucket beyond the window")
		rollupHr   = flag.Duration("rollup-hourly", time.Hour, "rollup fine-tier bucket width")
		rollupDay  = flag.Duration("rollup-daily", 24*time.Hour, "rollup coarse-tier bucket width (multiple of -rollup-hourly)")
		retainRaw  = flag.Duration("retain-raw", 0, "tiered retention: fold points older than this into rollup buckets at each checkpoint and drop the raw copies (0 = rollups off)")
		maxInFl    = flag.Int("max-inflight", 256, "max concurrent ingests before shedding 503 (0 = unlimited)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed responses")
		clusterSec = flag.String("cluster-secret", "", "shared secret arming the intra-cluster routes (/cluster/*) and coordinator arrival stamps")
	)
	cf := daemon.RegisterChaosFlags()
	of := daemon.RegisterObsFlags()
	flag.Parse()
	if *master == "" {
		log.Fatal("endpointd: -master is required")
	}

	keys := cloud.StaticKeys([]byte(*master))
	var store *cloud.Store
	if *dataDir != "" {
		policy, err := tsdb.ParseSyncPolicy(*walFsync)
		if err != nil {
			log.Fatalf("endpointd: %v", err)
		}
		db, err := tsdb.Open(tsdb.Options{
			Dir:       *dataDir,
			Shards:    *shards,
			Sync:      policy,
			SyncEvery: *walSyncEv,
			Logf:      log.Printf,
		})
		if err != nil {
			log.Fatalf("endpointd: opening %s: %v", *dataDir, err)
		}
		store = cloud.NewStoreWithDB(keys, db)
	} else {
		store = cloud.NewStore(keys)
	}

	// Rollups must be enabled before the snapshot loads: the loader
	// restores bucket state into the engine (and refuses a snapshot whose
	// tier geometry differs — summarized buckets cannot be re-cut).
	if *retainRaw > 0 {
		cfg := rollup.Config{Hourly: *rollupHr, Daily: *rollupDay}
		if err := store.EnableRollups(cfg, *retainRaw); err != nil {
			log.Fatalf("endpointd: %v", err)
		}
		log.Printf("endpointd: tiered rollups on (hourly %v, daily %v, raw retention %v)", *rollupHr, *rollupDay, *retainRaw)
	}

	// Boot: snapshot first (the checkpoint), then the WAL on top (the
	// readings accepted since that checkpoint).
	if *snapshot != "" {
		if err := store.LoadFile(*snapshot); err != nil {
			log.Fatalf("endpointd: restoring %s: %v", *snapshot, err)
		}
		log.Printf("endpointd: restored %d readings from %s", store.Count(), *snapshot)
	}
	if *dataDir != "" {
		begin := time.Now()
		rs, err := store.ReplayWAL()
		if err != nil {
			log.Fatalf("endpointd: WAL replay: %v", err)
		}
		log.Printf("endpointd: WAL replay: %d records, %d applied, %d corrupt frames tolerated in %v (shards %d, fsync %s)",
			rs.Records, rs.Kept, rs.Corruptions, time.Since(begin).Round(time.Millisecond), *shards, *walFsync)
	}

	server := cloud.NewServer(store, time.Now())
	server.SetIngestLimit(*maxInFl)
	server.SetRetryAfter(*retryAfter)
	if *clusterSec != "" {
		server.SetClusterSecret(*clusterSec)
		log.Printf("endpointd: cluster routes armed")
	}

	reg := obs.NewRegistry()
	store.RegisterMetrics(reg, nil)
	store.DB().RegisterMetrics(reg)
	server.RegisterQueryMetrics(reg, nil)

	var handler http.Handler = server
	if cf.Enabled() {
		log.Printf("endpointd: chaos injection enabled (seed %d)", cf.Seed)
		in := chaos.NewInjector(cf.Config())
		in.RegisterMetrics(reg, "chaos")
		handler = chaos.HandlerWith(handler, in)
	}

	health := obs.NewHealth()
	health.Register("ingest", func() error {
		if server.Degraded() {
			return errors.New("checkpointing failing; shedding ingest")
		}
		return nil
	})

	srv := &http.Server{Addr: *listen, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	of.Serve(ctx, log.Printf, reg, health)

	// Every daemon goroutine joins here before the final checkpoint: a
	// checkpoint racing a still-running ticker (or Shutdown's drain)
	// could snapshot mid-write state.
	var daemons sync.WaitGroup

	if *snapshot != "" {
		daemons.Add(1)
		go func() {
			defer daemons.Done()
			tick := time.NewTicker(*saveEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					// Checkpoint = snapshot + WAL truncation behind it;
					// with rollups on it also folds everything older than
					// the raw retention window into the tiers first.
					if err := checkpoint(store, *snapshot); err != nil {
						// Can't persist what we accept: shed until the
						// disk recovers so gateways buffer instead.
						log.Printf("endpointd: checkpoint: %v (degrading ingest)", err)
						server.SetDegraded(true)
					} else if server.Degraded() {
						log.Printf("endpointd: checkpoint recovered; accepting ingest again")
						server.SetDegraded(false)
					}
				}
			}
		}()
	}

	if *compactEv > 0 {
		start := time.Now()
		daemons.Add(1)
		go func() {
			defer daemons.Done()
			tick := time.NewTicker(*compactEv)
			defer tick.Stop()
			policy := cloud.RetentionPolicy{FullResolutionWindow: *retainFull, KeepOnePer: *retainPer}
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if store.Rollups() != nil {
						// Tiered retention supersedes the lossy KeepOnePer
						// thinning: folding summarizes exactly instead of
						// sampling, so the old compactor must not thin the
						// raw tail the next fold will consume.
						if folded := store.FoldRollups(store.HighWater()); folded > 0 {
							log.Printf("endpointd: rollup fold summarized %d readings (watermark %v)", folded, store.Rollups().FoldedBefore())
						}
						continue
					}
					if dropped := store.Compact(time.Since(start), policy); dropped > 0 {
						log.Printf("endpointd: retention compaction dropped %d readings", dropped)
					}
				}
			}
		}()
	}

	daemons.Add(1)
	go func() {
		defer daemons.Done()
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("endpointd: listening on %s (max-inflight %d)", *listen, *maxInFl)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("endpointd: %v", err)
	}
	// ListenAndServe returns when Shutdown *starts*; wait for the drain
	// (and the tickers) to finish before the final checkpoint touches
	// the store.
	stop()
	daemons.Wait()
	if *snapshot != "" {
		if err := checkpoint(store, *snapshot); err != nil {
			log.Fatalf("endpointd: final checkpoint: %v", err)
		}
		log.Printf("endpointd: saved %d readings to %s", store.Count(), *snapshot)
	}
	if err := store.Close(); err != nil {
		log.Printf("endpointd: storage close: %v", err)
	}
	log.Printf("endpointd: shed %d ingests while degraded/overloaded", server.Shed())
}
