// Command endpointd is the public data endpoint of the experiment: the
// centurysensors.com piece. It accepts raw 24-byte telemetry packets on
// POST /ingest, verifies and deduplicates them, and publishes the living
// status page on GET /.
//
//	endpointd -listen :8080 -master fleet-master-secret \
//	          -snapshot /var/lib/century/store.json -save-every 10m
//
// Device keys are derived from the fleet master secret and each device's
// EUI-64, so the endpoint needs no per-device database. With -snapshot
// set, state is restored at boot and saved atomically on the given
// interval and on clean shutdown — a 50-year service must assume its
// host will be replaced many times.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"centuryscale/internal/cloud"
)

func main() {
	var (
		listen    = flag.String("listen", ":8080", "HTTP listen address")
		master    = flag.String("master", "", "fleet master secret (required)")
		snapshot  = flag.String("snapshot", "", "snapshot file for durable state (optional)")
		saveEvery = flag.Duration("save-every", 10*time.Minute, "snapshot interval when -snapshot is set")
	)
	flag.Parse()
	if *master == "" {
		log.Fatal("endpointd: -master is required")
	}

	store := cloud.NewStore(cloud.StaticKeys([]byte(*master)))
	if *snapshot != "" {
		if err := store.LoadFile(*snapshot); err != nil {
			log.Fatalf("endpointd: restoring %s: %v", *snapshot, err)
		}
		log.Printf("endpointd: restored %d readings from %s", store.Count(), *snapshot)
	}

	srv := &http.Server{Addr: *listen, Handler: cloud.NewServer(store, time.Now())}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *snapshot != "" {
		go func() {
			tick := time.NewTicker(*saveEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := store.SaveFile(*snapshot); err != nil {
						log.Printf("endpointd: snapshot: %v", err)
					}
				}
			}
		}()
	}

	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("endpointd: listening on %s", *listen)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("endpointd: %v", err)
	}
	if *snapshot != "" {
		if err := store.SaveFile(*snapshot); err != nil {
			log.Fatalf("endpointd: final snapshot: %v", err)
		}
		log.Printf("endpointd: saved %d readings to %s", store.Count(), *snapshot)
	}
}
