// Command sensornode emulates one transmit-only, energy-harvesting sensor
// on a real network: it sends a signed 24-byte reading to a gateway over
// UDP on a fixed interval and listens for nothing (§4.1).
//
//	sensornode -gateway 127.0.0.1:7000 -device 42 -master fleet-master-secret -interval 10s
//
// The device key is derived exactly as endpointd derives it, so readings
// verify end to end.
//
// The -chaos-* flags drop transmitted datagrams on a seeded schedule —
// the device-side fault a transmit-only sensor can never observe — so a
// deployment can rehearse RF loss end to end.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os/signal"
	"syscall"
	"time"

	"centuryscale/internal/chaos"
	"centuryscale/internal/daemon"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/telemetry"
)

func main() {
	var (
		gwAddr    = flag.String("gateway", "127.0.0.1:7000", "gateway/hotspot UDP address")
		devID     = flag.Uint64("device", 1, "device ID (EUI-64 as integer)")
		master    = flag.String("master", "", "fleet master secret (required)")
		interval  = flag.Duration("interval", time.Minute, "report interval")
		count     = flag.Int("count", 0, "number of reports to send (0 = until interrupted)")
		abpMaster = flag.String("abp-master", "", "16-byte ABP master: send LoRaWAN uplinks (third-party path) instead of lpwan frames")
	)
	cf := daemon.RegisterChaosFlags()
	flag.Parse()
	if *master == "" {
		log.Fatal("sensornode: -master is required")
	}

	id := lpwan.EUIFromUint64(*devID)
	node := &daemon.SensorNode{
		ID:       id,
		Key:      telemetry.DeriveKey([]byte(*master), id),
		Sensor:   telemetry.SensorConcreteEMI,
		Interval: *interval,
	}
	if *abpMaster != "" {
		sess, err := daemon.NewLoRaWANSession([]byte(*abpMaster), uint32(*devID))
		if err != nil {
			log.Fatalf("sensornode: %v", err)
		}
		node.LoRaWAN = sess
	}
	to, err := net.ResolveUDPAddr("udp", *gwAddr)
	if err != nil {
		log.Fatalf("sensornode: %v", err)
	}
	conn, err := net.ListenPacket("udp", ":0")
	if err != nil {
		log.Fatalf("sensornode: %v", err)
	}
	defer conn.Close()
	if cf.Enabled() {
		log.Printf("sensornode: chaos injection enabled (seed %d): transmissions may be dropped in the air", cf.Seed)
		conn = chaos.WrapPacketConn(conn, cf.Config())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("sensornode %v: reporting to %s every %v", id, *gwAddr, *interval)
	if *count > 0 {
		for i := 0; i < *count; i++ {
			if err := node.SendOnce(conn, to, time.Now()); err != nil {
				log.Fatalf("sensornode: %v", err)
			}
			if i < *count-1 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(*interval):
				}
			}
		}
		return
	}
	if err := node.Run(ctx, conn, to); err != nil {
		log.Fatalf("sensornode: %v", err)
	}
}
