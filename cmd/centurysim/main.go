// Command centurysim regenerates the paper's quantitative claims as
// tables. Run one experiment by ID or groups of them:
//
//	centurysim -experiment E4
//	centurysim -experiment all -seed 42
//	centurysim -experiment ablations
//	centurysim -experiment A5 -format csv > density.csv
//
// Experiment IDs and what they reproduce are indexed in DESIGN.md; the
// recorded outputs live in EXPERIMENTS.md. Output formats: text
// (default, aligned columns), csv, json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"centuryscale/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("experiment", "all", "experiment ID (E1..E12, A1..A8), 'all', 'ablations', or 'everything'")
		seed   = flag.Uint64("seed", 1, "simulation seed; equal seeds reproduce results exactly")
		format = flag.String("format", "text", "output format: text, csv, json")
		list   = flag.Bool("list", false, "list experiment IDs and titles")
	)
	flag.Parse()

	if *list {
		for _, t := range append(experiments.All(*seed), experiments.AllAblations(*seed)...) {
			fmt.Printf("%-4s %s\n", t.ID, t.Title)
		}
		return
	}

	var tables []experiments.Table
	switch {
	case strings.EqualFold(*exp, "all"):
		tables = experiments.All(*seed)
	case strings.EqualFold(*exp, "ablations"):
		tables = experiments.AllAblations(*seed)
	case strings.EqualFold(*exp, "everything"):
		tables = append(experiments.All(*seed), experiments.AllAblations(*seed)...)
	default:
		t, ok := experiments.ByID(*exp, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "centurysim: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		tables = []experiments.Table{t}
	}

	switch strings.ToLower(*format) {
	case "text":
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	case "csv":
		for i, t := range tables {
			if i > 0 {
				fmt.Println()
			}
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "centurysim: %v\n", err)
				os.Exit(1)
			}
		}
	case "json":
		if err := experiments.WriteAllJSON(os.Stdout, tables); err != nil {
			fmt.Fprintf(os.Stderr, "centurysim: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "centurysim: unknown format %q\n", *format)
		os.Exit(2)
	}
}
