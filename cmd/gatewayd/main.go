// Command gatewayd is an open gateway: it listens for link-layer frames
// on UDP and forwards device payloads to the endpoint over HTTP —
// deliberately nothing more (§3.2: gateways should act as routers and
// defer decisions to other components).
//
//	gatewayd -listen :7000 -endpoint http://127.0.0.1:8080
//
// An optional -block flag seeds the blocklist with comma-separated
// EUI-64 addresses of known-bad devices.
//
// The backhaul is resilient: transient endpoint failures are retried
// with jittered backoff, a circuit breaker stops hammering a dead
// endpoint, and a bounded store-and-forward queue (-queue) buffers
// readings across outages, draining in order on recovery. SIGINT/SIGTERM
// flush the buffer before exit. The -chaos-* flags inject a seeded fault
// schedule into the uplink for outage drills.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"centuryscale/internal/daemon"
	"centuryscale/internal/gateway"
	"centuryscale/internal/lpwan"
	"centuryscale/internal/obs"
	"centuryscale/internal/resilience"
)

func main() {
	var (
		listen   = flag.String("listen", ":7000", "UDP listen address for device frames")
		endpoint = flag.String("endpoint", "http://127.0.0.1:8080", "endpoint base URL")
		id       = flag.String("id", "gatewayd", "gateway identity")
		block    = flag.String("block", "", "comma-separated EUI-64 blocklist")
		flushFor = flag.Duration("flush-timeout", 10*time.Second, "how long shutdown waits to drain the buffer")
	)
	rf := daemon.RegisterResilienceFlags()
	cf := daemon.RegisterChaosFlags()
	of := daemon.RegisterObsFlags()
	flag.Parse()

	inner := &daemon.HTTPUplink{URL: *endpoint, Client: cf.HTTPClient(10 * time.Second)}
	if cf.Enabled() {
		log.Printf("gatewayd: chaos injection enabled (seed %d)", cf.Seed)
	}
	up := resilience.NewUplink(inner, rf.Config())

	gw := gateway.New(gateway.Config{ID: *id}, up)
	if *block != "" {
		for _, s := range strings.Split(*block, ",") {
			e, err := lpwan.ParseEUI64(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("gatewayd: bad blocklist entry %q: %v", s, err)
			}
			gw.Block(e)
		}
	}

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		log.Fatalf("gatewayd: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	gw.RegisterMetrics(reg)
	up.RegisterMetrics(reg, "uplink")
	if in := cf.Injector(); in != nil {
		in.RegisterMetrics(reg, "chaos")
	}
	health := obs.NewHealth()
	health.Register("uplink", func() error {
		if st := up.Stats(); st.State == resilience.BreakerOpen {
			return fmt.Errorf("breaker open; %d payloads buffered", st.QueueLen)
		}
		return nil
	})
	of.Serve(ctx, log.Printf, reg, health)

	log.Printf("gatewayd %s: forwarding %s -> %s (queue %d)", *id, conn.LocalAddr(), *endpoint, rf.Queue)
	if err := daemon.ServeUDP(ctx, conn, gw); err != nil {
		log.Fatalf("gatewayd: %v", err)
	}

	// Clean shutdown: drain what the outage buffered before exiting.
	flushCtx, cancel := context.WithTimeout(context.Background(), *flushFor)
	defer cancel()
	if err := up.Close(flushCtx); err != nil {
		log.Printf("gatewayd: shutdown flush: %v", err)
	}
	s := gw.Stats()
	u := up.Stats()
	log.Printf("gatewayd: done. forwarded=%d malformed=%d blocked=%d uplink-errors=%d", s.Forwarded, s.DropMalformed, s.DropBlocked, s.UplinkErrors)
	log.Printf("gatewayd: uplink sent=%d drained=%d retries=%d buffered=%d dropped-oldest=%d breaker-trips=%d", u.Sent, u.Drained, u.Retries, u.Buffered, u.Queue.DroppedOldest, u.Breaker.Trips)
}
