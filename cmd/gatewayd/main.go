// Command gatewayd is an open gateway: it listens for link-layer frames
// on UDP and forwards device payloads to the endpoint over HTTP —
// deliberately nothing more (§3.2: gateways should act as routers and
// defer decisions to other components).
//
//	gatewayd -listen :7000 -endpoint http://127.0.0.1:8080
//
// An optional -block flag seeds the blocklist with comma-separated
// EUI-64 addresses of known-bad devices.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os/signal"
	"strings"
	"syscall"

	"centuryscale/internal/daemon"
	"centuryscale/internal/gateway"
	"centuryscale/internal/lpwan"
)

func main() {
	var (
		listen   = flag.String("listen", ":7000", "UDP listen address for device frames")
		endpoint = flag.String("endpoint", "http://127.0.0.1:8080", "endpoint base URL")
		id       = flag.String("id", "gatewayd", "gateway identity")
		block    = flag.String("block", "", "comma-separated EUI-64 blocklist")
	)
	flag.Parse()

	gw := gateway.New(gateway.Config{ID: *id}, &daemon.HTTPUplink{URL: *endpoint})
	if *block != "" {
		for _, s := range strings.Split(*block, ",") {
			e, err := lpwan.ParseEUI64(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("gatewayd: bad blocklist entry %q: %v", s, err)
			}
			gw.Block(e)
		}
	}

	conn, err := net.ListenPacket("udp", *listen)
	if err != nil {
		log.Fatalf("gatewayd: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("gatewayd %s: forwarding %s -> %s", *id, conn.LocalAddr(), *endpoint)
	if err := daemon.ServeUDP(ctx, conn, gw); err != nil {
		log.Fatalf("gatewayd: %v", err)
	}
	s := gw.Stats()
	log.Printf("gatewayd: done. forwarded=%d malformed=%d blocked=%d uplink-errors=%d",
		s.Forwarded, s.DropMalformed, s.DropBlocked, s.UplinkErrors)
}
