package centuryscale_test

import (
	"testing"
	"time"

	"centuryscale"
)

func TestPublicExperimentAPI(t *testing.T) {
	cfg := centuryscale.DefaultExperiment(centuryscale.OwnedWPAN)
	cfg.Horizon = centuryscale.Years(3)
	cfg.NumDevices = 10
	cfg.ReportInterval = 12 * time.Hour
	out := centuryscale.RunExperiment(cfg)
	if out.PacketsAccepted == 0 {
		t.Fatal("no packets accepted via public API")
	}
	if out.WeeklyUptime <= 0.9 {
		t.Fatalf("weekly uptime = %v", out.WeeklyUptime)
	}
}

func TestPublicFleetAPI(t *testing.T) {
	res := centuryscale.RunFleet(centuryscale.FleetConfig{
		Slots:    100,
		Horizon:  centuryscale.Years(50),
		Lifetime: centuryscale.FifteenYearDevices(),
		Policy:   centuryscale.PolicyOnFailure,
	}, 1)
	if res.Availability() < 0.95 {
		t.Fatalf("availability = %v", res.Availability())
	}
	if res.Replacements == 0 {
		t.Fatal("no replacements over 50 years of 15-year devices")
	}
}

func TestPublicLifetimeDistributions(t *testing.T) {
	batt := centuryscale.BatteryDeviceLifetime()
	harv := centuryscale.HarvestingDeviceLifetime()
	if batt.Survival(30) >= harv.Survival(30) {
		t.Fatal("harvesting must outlive battery at 30 years")
	}
}

func TestPublicCityAPI(t *testing.T) {
	rep := centuryscale.CityReplacement(centuryscale.LosAngeles(), centuryscale.DefaultLabor(), 25)
	if rep.PersonHours < 190000 || rep.PersonHours > 200000 {
		t.Fatalf("person-hours = %v", rep.PersonHours)
	}
	fixed, sensor := centuryscale.SeoulComparison(centuryscale.DefaultBins(), 180, 1)
	if sensor.CostCents >= fixed.CostCents {
		t.Fatal("sensor-driven collection must cost less")
	}
}

func TestPublicWalletAPI(t *testing.T) {
	if got := centuryscale.CreditsForUplink(time.Hour, 50*365*24*time.Hour); got != 438000 {
		t.Fatalf("credits = %d", got)
	}
	w := centuryscale.NewWallet(10)
	if err := w.Charge(11); err == nil {
		t.Fatal("overdraft allowed")
	}
}

func TestPublicHierarchyAPI(t *testing.T) {
	rep := centuryscale.BuildHierarchy(centuryscale.DefaultHierarchy())
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestPublicBackhaulAPI(t *testing.T) {
	fiber := centuryscale.BackhaulDefaults(centuryscale.Fiber, centuryscale.Municipal)
	cell := centuryscale.BackhaulDefaults(centuryscale.Cellular4G, centuryscale.Commercial)
	// Compare while both are still in service (4G sunsets at year 25 and
	// stops accruing — and stops carrying packets).
	if fiber.TCOCents(centuryscale.Years(25)) >= cell.TCOCents(centuryscale.Years(25)) {
		t.Fatal("fiber must undercut cellular by year 25")
	}
	if cell.SunsetAfterYears == 0 {
		t.Fatal("cellular must carry a sunset")
	}
}

func TestTimeHelpers(t *testing.T) {
	if centuryscale.ToYears(centuryscale.Years(50)) != 50 {
		t.Fatal("year round trip broken")
	}
	if centuryscale.Week != 7*centuryscale.Day {
		t.Fatal("week definition broken")
	}
}
