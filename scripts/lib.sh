#!/bin/sh
# lib.sh — shared plumbing for the smoke drills. Source it after
# `set -eu`, with SMOKE_NAME set to the script's reporting prefix:
#
#     SMOKE_NAME="smoke-obs"
#     . "$(dirname "$0")/lib.sh"
#
# The library owns the cleanup trap: register background pids with
# smoke_defer_pid and temp dirs with smoke_defer_dir, and every exit
# path — success, smoke_fail, ^C — kills and removes them. A script
# needing bespoke teardown defines smoke_extra_cleanup(); it runs
# before the registered kills.

SMOKE_NAME="${SMOKE_NAME:-smoke}"
SMOKE_PIDS=""
SMOKE_DIRS=""

smoke_defer_pid() { SMOKE_PIDS="$SMOKE_PIDS $1"; }
smoke_defer_dir() { SMOKE_DIRS="$SMOKE_DIRS $1"; }

smoke_cleanup() {
    if type smoke_extra_cleanup >/dev/null 2>&1; then
        smoke_extra_cleanup || true
    fi
    for _pid in $SMOKE_PIDS; do
        kill "$_pid" 2>/dev/null || true
    done
    # Reap what we can; pids started in subshells are not our children
    # and fail the wait, which is fine — the kill already landed.
    for _pid in $SMOKE_PIDS; do
        wait "$_pid" 2>/dev/null || true
    done
    # shellcheck disable=SC2086 # word-splitting the dir list is the point
    [ -n "$SMOKE_DIRS" ] && rm -rf $SMOKE_DIRS
    return 0
}
trap smoke_cleanup EXIT INT TERM

# smoke_fail <message> [logfile] — report the failure, dump the log
# tail when one is given, and exit 1 (through the cleanup trap).
smoke_fail() {
    echo "$SMOKE_NAME: $1" >&2
    if [ -n "${2:-}" ] && [ -f "$2" ]; then
        tail -40 "$2" >&2
    fi
    exit 1
}

# smoke_await <pid> <url> [pattern] [logfile] — poll the URL (50 x
# 0.2s) until curl succeeds (and the body matches pattern, when one is
# given), checking between polls that pid is still alive. Listeners
# bind asynchronously after daemon setup, so the port — not the
# process — is the only correct readiness signal.
smoke_await() {
    _pid="$1"
    _url="$2"
    _pattern="${3:-}"
    _log="${4:-}"
    _tries=0
    while [ "$_tries" -lt 50 ]; do
        if [ -n "$_pattern" ]; then
            if curl -sf "$_url" 2>/dev/null | grep -q "$_pattern"; then
                return 0
            fi
        elif curl -sf -o /dev/null "$_url"; then
            return 0
        fi
        kill -0 "$_pid" 2>/dev/null || smoke_fail "process $_pid died during boot" "$_log"
        sleep 0.2
        _tries=$((_tries + 1))
    done
    smoke_fail "no answer from $_url after 10s" "$_log"
}
