#!/bin/sh
# smoke_query.sh — the end-to-end drill for the tiered read path against
# the real binary: boot endpointd with rollups on (-retain-raw), pump a
# two-year virtual series through /ingest with cluster-stamped arrival
# times (the data clock paces retention, not the wall clock), wait for a
# checkpoint to fold the old raw tail into hourly/daily buckets, and
# verify /query from outside: full coverage, daily tier engaged, under
# the latency budget. Then SIGKILL the daemon — no shutdown path — boot
# a fresh process from the snapshot + WAL, and require the byte-exact
# same answer: the rollup state survived the crash with no double-count
# and no loss. Finally scrape /metrics for the query_* instruments.
#
# Ports are fixed but obscure; pass SMOKE_QUERY_PORT/SMOKE_QUERY_DEBUG_PORT
# to override on a busy host.
set -eu

SMOKE_NAME="smoke-query"
. "$(dirname "$0")/lib.sh"

PORT="${SMOKE_QUERY_PORT:-18090}"
DEBUG_PORT="${SMOKE_QUERY_DEBUG_PORT:-18091}"
MASTER="smoke-fleet-master"
SECRET="smoke-query-secret"

TMP="$(mktemp -d)"
smoke_defer_dir "$TMP"

go build -o "$TMP/endpointd" ./cmd/endpointd
go build -o "$TMP/queryload" ./cmd/queryload

# boot — start the endpoint with tiered retention: hourly/daily rollup
# buckets, raw kept for 30 virtual days, checkpoint (= fold + snapshot +
# WAL truncation) every second. The same data dir and snapshot survive
# kills, so a restart replays to the identical state.
boot() {
    "$TMP/endpointd" -listen "127.0.0.1:$PORT" -master "$MASTER" \
        -data-dir "$TMP/tsdb" -shards 4 -wal-fsync always \
        -snapshot "$TMP/store.json" -save-every 1s \
        -retain-raw 720h -cluster-secret "$SECRET" \
        -debug-addr "127.0.0.1:$DEBUG_PORT" >>"$TMP/endpointd.log" 2>&1 &
    PID=$!
    smoke_defer_pid "$PID"
}

await_ready() {
    smoke_await "$PID" "http://127.0.0.1:$PORT/status" "" "$TMP/endpointd.log"
}

mkdir -p "$TMP/tsdb"
boot
await_ready

# Two devices, 730 daily points each: two years of data time in a few
# wall seconds, arrival-stamped via the cluster header.
"$TMP/queryload" -endpoint "http://127.0.0.1:$PORT" -master "$MASTER" \
    -cluster-secret "$SECRET" -mode ingest -devices 2 -points 730 ||
    smoke_fail "ingest failed — endpointd log follows" "$TMP/endpointd.log"

# First verify: waits for the fold (checkpoint cadence is 1s), checks
# coverage + daily tier + latency, and records the answer bytes.
"$TMP/queryload" -endpoint "http://127.0.0.1:$PORT" -mode verify \
    -devices 2 -points 730 -answer "$TMP/answer.json" -max-millis 10 ||
    smoke_fail "pre-kill verify failed — endpointd log follows" "$TMP/endpointd.log"

# The crash: SIGKILL, no shutdown path — the snapshot (folded buckets +
# watermark) and the WAL (raw tail) are the only survivors.
echo "smoke-query: SIGKILL endpointd (pid $PID)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

echo "smoke-query: rebooting from snapshot + WAL"
boot
await_ready

# Post-kill verify: the same checks, and the answer must be
# byte-identical to the pre-kill record — no double-count, no loss.
"$TMP/queryload" -endpoint "http://127.0.0.1:$PORT" -mode verify \
    -devices 2 -points 730 -answer "$TMP/answer.json" -max-millis 10 ||
    smoke_fail "post-kill verify failed — endpointd log follows" "$TMP/endpointd.log"

# The query layer's instruments must be live on the debug surface.
METRICS="$TMP/metrics.txt"
STATUS="$(curl -s -o "$METRICS" -w '%{http_code}' "http://127.0.0.1:$DEBUG_PORT/metrics")"
[ "$STATUS" = "200" ] || smoke_fail "GET /metrics returned $STATUS"
for want in query_requests_total query_tier_daily_buckets_total query_seconds; do
    grep -q "^$want" "$METRICS" || smoke_fail "exposition is missing $want"
done
REQS="$(grep '^query_requests_total ' "$METRICS" | awk '{print $2}')"

echo "smoke-query: OK (daily tier engaged, crash-equivalent answers, $REQS query requests instrumented)"
