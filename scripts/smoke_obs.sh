#!/bin/sh
# smoke_obs.sh — boot endpointd with a debug listener, scrape /metrics
# and /healthz, and fail on anything but a 200 with a non-empty
# exposition. This is the end-to-end check that the -debug-addr flag
# wiring actually serves: the registry is populated, the mux is mounted,
# and the daemon keeps ingesting while being scraped.
#
# Ports are fixed but obscure; pass SMOKE_PORT/SMOKE_DEBUG_PORT to
# override on a busy host.
set -eu

SMOKE_NAME="smoke-obs"
. "$(dirname "$0")/lib.sh"

PORT="${SMOKE_PORT:-18080}"
DEBUG_PORT="${SMOKE_DEBUG_PORT:-18081}"

TMP="$(mktemp -d)"
smoke_defer_dir "$TMP"
mkdir -p "$TMP/data"

go build -o "$TMP/endpointd" ./cmd/endpointd

"$TMP/endpointd" -listen "127.0.0.1:$PORT" -master smoke-master \
    -data-dir "$TMP/data" -shards 2 -wal-fsync never \
    -debug-addr "127.0.0.1:$DEBUG_PORT" &
PID=$!
smoke_defer_pid "$PID"

# Wait for the debug listener, not just the process: Serve binds
# asynchronously after the daemon's own setup.
smoke_await "$PID" "http://127.0.0.1:$DEBUG_PORT/healthz"

METRICS="$TMP/metrics.txt"
STATUS="$(curl -s -o "$METRICS" -w '%{http_code}' "http://127.0.0.1:$DEBUG_PORT/metrics")"
[ "$STATUS" = "200" ] || smoke_fail "GET /metrics returned $STATUS"
[ -s "$METRICS" ] || smoke_fail "/metrics exposition is empty"

# The registry must actually carry the daemon's instruments, not just
# any bytes: check for one cloud counter and one tsdb counter.
for want in cloud_ingest_accepted_total tsdb_appended_total; do
    grep -q "^$want " "$METRICS" || smoke_fail "exposition is missing $want:" "$METRICS"
done

HSTATUS="$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$DEBUG_PORT/healthz")"
[ "$HSTATUS" = "200" ] || smoke_fail "GET /healthz returned $HSTATUS"

BYTES="$(wc -c <"$METRICS")"
echo "smoke-obs: OK (/metrics served $BYTES bytes, /healthz 200)"
