#!/bin/sh
# smoke_obs.sh — boot endpointd with a debug listener, scrape /metrics
# and /healthz, and fail on anything but a 200 with a non-empty
# exposition. This is the end-to-end check that the -debug-addr flag
# wiring actually serves: the registry is populated, the mux is mounted,
# and the daemon keeps ingesting while being scraped.
#
# Ports are fixed but obscure; pass SMOKE_PORT/SMOKE_DEBUG_PORT to
# override on a busy host.
set -eu

PORT="${SMOKE_PORT:-18080}"
DEBUG_PORT="${SMOKE_DEBUG_PORT:-18081}"
BIN="$(mktemp -d)/endpointd"
DATA="$(mktemp -d)"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")" "$DATA"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/endpointd

"$BIN" -listen "127.0.0.1:$PORT" -master smoke-master \
    -data-dir "$DATA" -shards 2 -wal-fsync never \
    -debug-addr "127.0.0.1:$DEBUG_PORT" &
PID=$!

# Wait for the debug listener, not just the process: Serve binds
# asynchronously after the daemon's own setup.
ok=""
for _ in $(seq 1 50); do
    if curl -sf -o /dev/null "http://127.0.0.1:$DEBUG_PORT/healthz"; then
        ok=1
        break
    fi
    kill -0 "$PID" 2>/dev/null || { echo "smoke-obs: endpointd died during boot" >&2; exit 1; }
    sleep 0.2
done
[ -n "$ok" ] || { echo "smoke-obs: debug listener never came up on :$DEBUG_PORT" >&2; exit 1; }

METRICS="$(mktemp)"
STATUS="$(curl -s -o "$METRICS" -w '%{http_code}' "http://127.0.0.1:$DEBUG_PORT/metrics")"
if [ "$STATUS" != "200" ]; then
    echo "smoke-obs: GET /metrics returned $STATUS" >&2
    exit 1
fi
if ! [ -s "$METRICS" ]; then
    echo "smoke-obs: /metrics exposition is empty" >&2
    exit 1
fi
# The registry must actually carry the daemon's instruments, not just
# any bytes: check for one cloud counter and one tsdb counter.
for want in cloud_ingest_accepted_total tsdb_appended_total; do
    if ! grep -q "^$want " "$METRICS"; then
        echo "smoke-obs: exposition is missing $want:" >&2
        head -20 "$METRICS" >&2
        exit 1
    fi
done

HSTATUS="$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$DEBUG_PORT/healthz")"
if [ "$HSTATUS" != "200" ]; then
    echo "smoke-obs: GET /healthz returned $HSTATUS" >&2
    exit 1
fi

BYTES="$(wc -c <"$METRICS")"
rm -f "$METRICS"
echo "smoke-obs: OK (/metrics served $BYTES bytes, /healthz 200)"
