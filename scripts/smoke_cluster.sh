#!/bin/sh
# smoke_cluster.sh — the end-to-end failover drill against the real
# binaries: boot three endpointd nodes with WAL-backed storage and a
# cluster-mode routerd (R=2, W=2), then let cmd/clusterload pump sealed
# telemetry through the router while a seeded chaos schedule picks a
# victim to SIGKILL mid-ingest. The victim reboots from its WAL, and the
# driver proves the contract from outside: zero acknowledged packets
# lost (byte-checked via merged /history), health degraded — never
# failed — during the outage, and a 503-free recovery window after it.
#
# The driver owns the seeded schedule and writes the victim's index to a
# marker file; this script executes the kill and the restart. Ports are
# fixed but obscure; pass SMOKE_CLUSTER_BASE_PORT to override.
set -eu

SMOKE_NAME="smoke-cluster"
. "$(dirname "$0")/lib.sh"

BASE="${SMOKE_CLUSTER_BASE_PORT:-19080}"
ROUTER_PORT=$((BASE + 3))
DEBUG_PORT=$((BASE + 4))
MASTER="smoke-fleet-master"
SECRET="smoke-cluster-secret"
SEED="${SMOKE_CLUSTER_SEED:-7}"

TMP="$(mktemp -d)"
smoke_defer_dir "$TMP"
MARKER="$TMP/kill.marker"

# The rebooted victim is started by the executor subshell, so its pid
# reaches us only through a file — reap it on every exit path.
smoke_extra_cleanup() {
    if [ -f "$TMP/victim.pid" ]; then
        kill "$(cat "$TMP/victim.pid")" 2>/dev/null || true
    fi
}

go build -o "$TMP/endpointd" ./cmd/endpointd
go build -o "$TMP/routerd" ./cmd/routerd
go build -o "$TMP/clusterload" ./cmd/clusterload

# boot_node <index> — start one WAL-backed endpoint; its data dir
# survives kills, so a restart replays everything it ever acknowledged.
boot_node() {
    idx="$1"
    mkdir -p "$TMP/node$idx"
    "$TMP/endpointd" -listen "127.0.0.1:$((BASE + idx))" -master "$MASTER" \
        -data-dir "$TMP/node$idx" -shards 4 -wal-fsync always \
        -cluster-secret "$SECRET" >"$TMP/node$idx.log" 2>&1 &
    echo $!
}

N0_PID="$(boot_node 0)"
N1_PID="$(boot_node 1)"
N2_PID="$(boot_node 2)"
smoke_defer_pid "$N0_PID"
smoke_defer_pid "$N1_PID"
smoke_defer_pid "$N2_PID"

"$TMP/routerd" -listen "127.0.0.1:$ROUTER_PORT" -abp-master 0123456789abcdef \
    -cluster-peers "http://127.0.0.1:$BASE,http://127.0.0.1:$((BASE + 1)),http://127.0.0.1:$((BASE + 2))" \
    -replicas 2 -write-quorum 2 -cluster-secret "$SECRET" \
    -suspect-after 500ms -heartbeat-every 200ms \
    -retries 1 -retry-base 10ms \
    -debug-addr "127.0.0.1:$DEBUG_PORT" >"$TMP/routerd.log" 2>&1 &
ROUTER_PID=$!
smoke_defer_pid "$ROUTER_PID"

# Wait for the router's cluster front, and for every node to answer it.
smoke_await "$ROUTER_PID" "http://127.0.0.1:$ROUTER_PORT/status" '"health":"healthy"' "$TMP/routerd.log"

# The kill executor: when the driver writes the seeded verdict, SIGKILL
# that node (no shutdown path — the WAL is the only survivor), hold the
# outage long enough for the detector to call it, then reboot it.
(
    while [ ! -f "$MARKER" ]; do sleep 0.1; done
    victim="$(cat "$MARKER")"
    case "$victim" in
        0) vpid="$N0_PID" ;;
        1) vpid="$N1_PID" ;;
        2) vpid="$N2_PID" ;;
        *) echo "smoke-cluster: bad victim index '$victim'" >&2; exit 1 ;;
    esac
    echo "smoke-cluster: SIGKILL node $victim (pid $vpid)"
    kill -9 "$vpid"
    sleep 4
    echo "smoke-cluster: rebooting node $victim from its WAL"
    boot_node "$victim" >"$TMP/victim.pid"
) &
EXECUTOR_PID=$!
smoke_defer_pid "$EXECUTOR_PID"

"$TMP/clusterload" -router "http://127.0.0.1:$ROUTER_PORT" -master "$MASTER" \
    -seed "$SEED" -nodes 3 -packets 300 -devices 6 -kill-after 60 \
    -kill-marker "$MARKER" ||
    smoke_fail "FAILED — driver logs above, router log follows" "$TMP/routerd.log"

wait "$EXECUTOR_PID" 2>/dev/null || true

# The router's debug surface must agree: /healthz is 200 again.
HSTATUS="$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$DEBUG_PORT/healthz")"
[ "$HSTATUS" = "200" ] || smoke_fail "GET /healthz returned $HSTATUS after recovery"

echo "smoke-cluster: OK (zero acknowledged loss, degraded-not-failed outage, 503-free recovery)"
