#!/bin/sh
# smoke_cluster.sh — the end-to-end failover drill against the real
# binaries: boot three endpointd nodes with WAL-backed storage and a
# cluster-mode routerd (R=2, W=2), then let cmd/clusterload pump sealed
# telemetry through the router while a seeded chaos schedule picks a
# victim to SIGKILL mid-ingest. The victim reboots from its WAL, and the
# driver proves the contract from outside: zero acknowledged packets
# lost (byte-checked via merged /history), health degraded — never
# failed — during the outage, and a 503-free recovery window after it.
#
# The driver owns the seeded schedule and writes the victim's index to a
# marker file; this script executes the kill and the restart. Ports are
# fixed but obscure; pass SMOKE_CLUSTER_BASE_PORT to override.
set -eu

BASE="${SMOKE_CLUSTER_BASE_PORT:-19080}"
ROUTER_PORT=$((BASE + 3))
DEBUG_PORT=$((BASE + 4))
MASTER="smoke-fleet-master"
SECRET="smoke-cluster-secret"
SEED="${SMOKE_CLUSTER_SEED:-7}"

TMP="$(mktemp -d)"
MARKER="$TMP/kill.marker"

cleanup() {
    for pid in "${ROUTER_PID:-}" "${N0_PID:-}" "${N1_PID:-}" "${N2_PID:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/endpointd" ./cmd/endpointd
go build -o "$TMP/routerd" ./cmd/routerd
go build -o "$TMP/clusterload" ./cmd/clusterload

# boot_node <index> — start one WAL-backed endpoint; its data dir
# survives kills, so a restart replays everything it ever acknowledged.
boot_node() {
    idx="$1"
    mkdir -p "$TMP/node$idx"
    "$TMP/endpointd" -listen "127.0.0.1:$((BASE + idx))" -master "$MASTER" \
        -data-dir "$TMP/node$idx" -shards 4 -wal-fsync always \
        -cluster-secret "$SECRET" >"$TMP/node$idx.log" 2>&1 &
    echo $!
}

N0_PID="$(boot_node 0)"
N1_PID="$(boot_node 1)"
N2_PID="$(boot_node 2)"

"$TMP/routerd" -listen "127.0.0.1:$ROUTER_PORT" -abp-master 0123456789abcdef \
    -cluster-peers "http://127.0.0.1:$BASE,http://127.0.0.1:$((BASE + 1)),http://127.0.0.1:$((BASE + 2))" \
    -replicas 2 -write-quorum 2 -cluster-secret "$SECRET" \
    -suspect-after 500ms -heartbeat-every 200ms \
    -retries 1 -retry-base 10ms \
    -debug-addr "127.0.0.1:$DEBUG_PORT" >"$TMP/routerd.log" 2>&1 &
ROUTER_PID=$!

# Wait for the router's cluster front, and for every node to answer it.
ok=""
for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$ROUTER_PORT/status" | grep -q '"health":"healthy"'; then
        ok=1
        break
    fi
    kill -0 "$ROUTER_PID" 2>/dev/null || { echo "smoke-cluster: routerd died during boot" >&2; cat "$TMP/routerd.log" >&2; exit 1; }
    sleep 0.2
done
[ -n "$ok" ] || { echo "smoke-cluster: cluster never reported healthy on :$ROUTER_PORT" >&2; cat "$TMP/routerd.log" >&2; exit 1; }

# The kill executor: when the driver writes the seeded verdict, SIGKILL
# that node (no shutdown path — the WAL is the only survivor), hold the
# outage long enough for the detector to call it, then reboot it.
(
    while [ ! -f "$MARKER" ]; do sleep 0.1; done
    victim="$(cat "$MARKER")"
    case "$victim" in
        0) vpid="$N0_PID" ;;
        1) vpid="$N1_PID" ;;
        2) vpid="$N2_PID" ;;
        *) echo "smoke-cluster: bad victim index '$victim'" >&2; exit 1 ;;
    esac
    echo "smoke-cluster: SIGKILL node $victim (pid $vpid)"
    kill -9 "$vpid"
    sleep 4
    echo "smoke-cluster: rebooting node $victim from its WAL"
    boot_node "$victim" >"$TMP/victim.pid"
) &
EXECUTOR_PID=$!

"$TMP/clusterload" -router "http://127.0.0.1:$ROUTER_PORT" -master "$MASTER" \
    -seed "$SEED" -nodes 3 -packets 300 -devices 6 -kill-after 60 \
    -kill-marker "$MARKER" || {
    echo "smoke-cluster: FAILED — driver logs above, router log follows" >&2
    tail -40 "$TMP/routerd.log" >&2
    exit 1
}

wait "$EXECUTOR_PID" 2>/dev/null || true
if [ -f "$TMP/victim.pid" ]; then
    kill "$(cat "$TMP/victim.pid")" 2>/dev/null || true
fi

# The router's debug surface must agree: /healthz is 200 again.
HSTATUS="$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$DEBUG_PORT/healthz")"
if [ "$HSTATUS" != "200" ]; then
    echo "smoke-cluster: GET /healthz returned $HSTATUS after recovery" >&2
    exit 1
fi

echo "smoke-cluster: OK (zero acknowledged loss, degraded-not-failed outage, 503-free recovery)"
