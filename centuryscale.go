// Package centuryscale is a reproduction of "Century-Scale Smart
// Infrastructure" (Jagtap, Bhaskar, Pannuto — HotOS '21): a simulation
// and runtime toolkit for reasoning about smart-city sensing systems
// designed to operate for decades.
//
// The package is the stable public face of the library. It re-exports the
// pieces a downstream user composes:
//
//   - The 50-year experiment (§4): RunExperiment simulates transmit-only
//     energy-harvesting devices, owned 802.15.4 or third-party LoRa
//     gateways, backhaul, and the public data endpoint, end to end, and
//     reports the paper's weekly-uptime metric.
//   - The deployment hierarchy (Figure 1): BuildHierarchy quantifies
//     fan-in and lifetime variability per tier.
//   - Fleet lifecycle (§1, §3.4): Ship-of-Theseus replacement policies
//     and aggregate availability, via the Fleet* types.
//   - City economics (§1, §2, §3.4): Los Angeles replacement labor,
//     Seoul's sensor-driven trash collection, and the owned-vs-leased
//     tipping point.
//   - Helium-style economics (§4.3-4.4): prepaid data-credit wallets and
//     AS-diversity analysis of a semi-federated gateway network.
//
// Everything is deterministic: every entry point takes (or embeds) a
// seed, and equal seeds reproduce results bit for bit. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-versus-measured
// numbers for every claim reproduced.
package centuryscale

import (
	"time"

	"centuryscale/internal/backhaul"
	"centuryscale/internal/city"
	"centuryscale/internal/core"
	"centuryscale/internal/device"
	"centuryscale/internal/econ"
	"centuryscale/internal/fleet"
	"centuryscale/internal/helium"
	"centuryscale/internal/reliability"
	"centuryscale/internal/rng"
	"centuryscale/internal/sim"
)

// Time helpers: the simulator measures virtual time as a time.Duration
// offset from the deployment epoch, with Julian years.
const (
	Day  = sim.Day
	Week = sim.Week
	Year = sim.Year
)

// Years converts fractional years to a simulation duration.
func Years(y float64) time.Duration { return sim.Years(y) }

// ToYears converts a simulation duration to fractional years.
func ToYears(d time.Duration) float64 { return sim.ToYears(d) }

// The 50-year experiment (§4).
type (
	// ExperimentConfig parameterises one end-to-end run.
	ExperimentConfig = core.ExperimentConfig
	// Outcome is what a run reports.
	Outcome = core.Outcome
	// GatewayDesign selects owned 802.15.4 vs third-party LoRa.
	GatewayDesign = core.GatewayDesign
)

// Gateway designs.
const (
	OwnedWPAN      = core.OwnedWPAN
	ThirdPartyLoRa = core.ThirdPartyLoRa
)

// DefaultExperiment returns the paper's initial deployment configuration
// for a design point.
func DefaultExperiment(design GatewayDesign) ExperimentConfig {
	return core.DefaultExperiment(design)
}

// RunExperiment executes an end-to-end simulated run.
func RunExperiment(cfg ExperimentConfig) *Outcome { return core.RunExperiment(cfg) }

// Device classes (§4.1 vs today's deployments).
const (
	ClassBattery    = device.ClassBattery
	ClassHarvesting = device.ClassHarvesting
)

// The deployment hierarchy (Figure 1).
type (
	// HierarchyConfig sets tier populations.
	HierarchyConfig = core.HierarchyConfig
	// HierarchyReport quantifies fan-in and lifetime spread per tier.
	HierarchyReport = core.HierarchyReport
)

// DefaultHierarchy returns a municipal-scale hierarchy.
func DefaultHierarchy() HierarchyConfig { return core.DefaultHierarchy() }

// BuildHierarchy samples the hierarchy report.
func BuildHierarchy(cfg HierarchyConfig) HierarchyReport { return core.BuildHierarchy(cfg) }

// Fleet lifecycle (§1, §3.4).
type (
	// FleetConfig parameterises a Ship-of-Theseus fleet run.
	FleetConfig = fleet.Config
	// FleetResult reports availability, cost, and the maintenance diary.
	FleetResult = fleet.Result
	// FleetPolicy selects the replacement strategy.
	FleetPolicy = fleet.Policy
)

// Fleet replacement policies.
const (
	PolicyNone      = fleet.PolicyNone
	PolicyOnFailure = fleet.PolicyOnFailure
	PolicyBatch     = fleet.PolicyBatch
	PolicyScheduled = fleet.PolicyScheduled
)

// RunFleet simulates a device fleet under a replacement policy. The seed
// makes the run reproducible.
func RunFleet(cfg FleetConfig, seed uint64) *FleetResult {
	return fleet.Run(cfg, rng.New(seed))
}

// Device lifetime distributions for fleet runs.

// BatteryDeviceLifetime returns the series-system lifetime distribution of
// a conventional battery-powered sensor (mean ~10 years).
func BatteryDeviceLifetime() reliability.Distribution {
	return reliability.BatteryDeviceBOM().System()
}

// HarvestingDeviceLifetime returns the lifetime distribution of the
// paper's batteryless, energy-harvesting design.
func HarvestingDeviceLifetime() reliability.Distribution {
	return reliability.HarvestingDeviceBOM().System()
}

// FifteenYearDevices returns the paper's illustrative "15-year sensor"
// wear-out distribution.
func FifteenYearDevices() reliability.Distribution {
	return reliability.WeibullFromMean(3, 15)
}

// City economics (§1, §2).
type (
	// Inventory counts municipal assets by type.
	Inventory = city.Inventory
	// LaborModel prices device-touch labor.
	LaborModel = city.LaborModel
	// ReplacementReport compares en-masse vs rolling recovery.
	ReplacementReport = city.ReplacementReport
	// TrashResult reports a waste-collection policy run.
	TrashResult = city.TrashResult
	// BinConfig parameterises the bin population.
	BinConfig = city.BinConfig
)

// LosAngeles returns the paper's §1 asset inventory.
func LosAngeles() Inventory { return city.LosAngeles() }

// DefaultLabor returns the paper-anchored labor model.
func DefaultLabor() LaborModel { return city.DefaultLabor() }

// CityReplacement computes the §1 labor analysis.
func CityReplacement(inv Inventory, m LaborModel, cycleYears float64) ReplacementReport {
	return city.Replacement(inv, m, cycleYears)
}

// DefaultBins returns the Seoul-style bin district configuration.
func DefaultBins() BinConfig { return city.DefaultBins() }

// SeoulComparison runs fixed-schedule vs sensor-driven waste collection
// on the same bin population (§2's 66%/83% claim).
func SeoulComparison(cfg BinConfig, days int, seed uint64) (fixed, sensor TrashResult) {
	return city.SeoulComparison(cfg, days, seed)
}

// Backhaul and ownership (§3.3).
type (
	// BackhaulProfile prices and risks one backhaul option.
	BackhaulProfile = backhaul.Profile
	// BackhaulTech is the technology (fiber, cellular generations, ...).
	BackhaulTech = backhaul.Tech
	// Ownership is who operates it.
	Ownership = backhaul.Ownership
)

// Backhaul technologies.
const (
	Fiber      = backhaul.Fiber
	Ethernet   = backhaul.Ethernet
	Cellular2G = backhaul.Cellular2G
	Cellular3G = backhaul.Cellular3G
	Cellular4G = backhaul.Cellular4G
	Cellular5G = backhaul.Cellular5G
	WiMAX      = backhaul.WiMAX
)

// Ownership models.
const (
	Municipal          = backhaul.Municipal
	Commercial         = backhaul.Commercial
	VerticalIntegrated = backhaul.VerticalIntegrated
)

// BackhaulDefaults returns the reference cost/risk profile for a
// technology under an ownership model.
func BackhaulDefaults(t BackhaulTech, o Ownership) BackhaulProfile {
	return backhaul.DefaultProfile(t, o)
}

// Tipping point (§3.4).
type (
	// TippingConfig parameterises the owned-vs-leased comparison.
	TippingConfig = econ.TippingConfig
	// Cents is an exact currency amount.
	Cents = econ.Cents
)

// Helium-style economics (§4.3-4.4).
type (
	// Wallet is a prepaid data-credit balance.
	Wallet = helium.Wallet
	// HeliumConfig parameterises the synthetic hotspot network.
	HeliumConfig = helium.NetworkConfig
	// HeliumNetwork is a synthetic hotspot population.
	HeliumNetwork = helium.Network
)

// NewWallet returns a wallet holding the given data credits.
func NewWallet(credits int64) *Wallet { return helium.NewWallet(credits) }

// CreditsForUplink returns the §4.4 data-credit arithmetic.
func CreditsForUplink(interval, span time.Duration) int64 {
	return helium.CreditsForUplink(interval, span)
}

// DefaultHeliumNetwork returns the measured-snapshot configuration
// (~12,400 hotspots, ~200 ASes).
func DefaultHeliumNetwork() HeliumConfig { return helium.DefaultNetworkConfig() }

// NewHeliumNetwork synthesises a hotspot population.
func NewHeliumNetwork(cfg HeliumConfig, seed uint64) *HeliumNetwork {
	return helium.NewNetwork(cfg, rng.New(seed))
}
