// Benchmarks: one per reproduced table/figure (E1-E12; see DESIGN.md for
// the experiment index and EXPERIMENTS.md for recorded outputs). Each
// bench regenerates its experiment's full table from scratch, so
// `go test -bench=. -benchmem` both re-derives every claim and measures
// the cost of doing so.
package centuryscale_test

import (
	"testing"

	"centuryscale/internal/experiments"
)

// sink defeats dead-code elimination of table construction.
var sink int

func benchTable(b *testing.B, f func(uint64) experiments.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := f(uint64(i + 1))
		sink += len(t.Rows)
	}
}

// BenchmarkE1Hierarchy regenerates Figure 1 (deployment hierarchy).
func BenchmarkE1Hierarchy(b *testing.B) {
	benchTable(b, experiments.E1Hierarchy)
}

// BenchmarkE2LaborModel regenerates §1's LA replacement-labor analysis.
func BenchmarkE2LaborModel(b *testing.B) {
	benchTable(b, func(uint64) experiments.Table { return experiments.E2Labor() })
}

// BenchmarkE3TodayScale regenerates §2's 500-5,000-node sweep.
func BenchmarkE3TodayScale(b *testing.B) {
	benchTable(b, experiments.E3TodayScale)
}

// BenchmarkE4HeliumWallet regenerates §4.4's data-credit arithmetic.
func BenchmarkE4HeliumWallet(b *testing.B) {
	benchTable(b, func(uint64) experiments.Table { return experiments.E4HeliumWallet() })
}

// BenchmarkE5BackhaulDiversity regenerates §4.3's AS census.
func BenchmarkE5BackhaulDiversity(b *testing.B) {
	benchTable(b, experiments.E5BackhaulDiversity)
}

// BenchmarkE6SurvivalRace regenerates the battery-vs-harvesting survival
// table (§1, §4).
func BenchmarkE6SurvivalRace(b *testing.B) {
	benchTable(b, experiments.E6SurvivalRace)
}

// BenchmarkE7TippingPoint regenerates §3.4's tipping-point sweep.
func BenchmarkE7TippingPoint(b *testing.B) {
	benchTable(b, func(uint64) experiments.Table { return experiments.E7TippingPoint() })
}

// BenchmarkE8FiberVsCellular regenerates §3.3's backhaul comparison.
func BenchmarkE8FiberVsCellular(b *testing.B) {
	benchTable(b, experiments.E8FiberVsCellular)
}

// BenchmarkE9ShipOfTheseus regenerates §1's pipelined-cohort comparison.
func BenchmarkE9ShipOfTheseus(b *testing.B) {
	benchTable(b, experiments.E9ShipOfTheseus)
}

// BenchmarkE10FiftyYear regenerates the full §4 experiment, both designs,
// 50 simulated years each. This is the heavyweight end-to-end bench.
func BenchmarkE10FiftyYear(b *testing.B) {
	benchTable(b, experiments.E10FiftyYear)
}

// BenchmarkE11SmartTrash regenerates §2's Seoul comparison.
func BenchmarkE11SmartTrash(b *testing.B) {
	benchTable(b, experiments.E11SmartTrash)
}

// BenchmarkE12Interop regenerates §3.2's open-vs-locked coverage table.
func BenchmarkE12Interop(b *testing.B) {
	benchTable(b, experiments.E12Interop)
}

// Ablation benches (A1-A7): the design-choice sweeps and application
// workloads indexed in DESIGN.md.

// BenchmarkA1LoRaSweep regenerates the spreading-factor trade table.
func BenchmarkA1LoRaSweep(b *testing.B) {
	benchTable(b, func(uint64) experiments.Table { return experiments.A1LoRaSweep() })
}

// BenchmarkA2StorageSizing regenerates the supercap-sizing table.
func BenchmarkA2StorageSizing(b *testing.B) {
	benchTable(b, func(uint64) experiments.Table { return experiments.A2StorageSizing() })
}

// BenchmarkA3GatewayDensity regenerates the gateway-density table
// (four 10-year end-to-end runs per iteration).
func BenchmarkA3GatewayDensity(b *testing.B) {
	benchTable(b, experiments.A3GatewayDensity)
}

// BenchmarkA4ReplacementPolicies regenerates the policy comparison.
func BenchmarkA4ReplacementPolicies(b *testing.B) {
	benchTable(b, experiments.A4ReplacementPolicies)
}

// BenchmarkA5SensingDensity regenerates the air-quality density study.
func BenchmarkA5SensingDensity(b *testing.B) {
	benchTable(b, experiments.A5SensingDensity)
}

// BenchmarkA6Metering regenerates the AMI demand-response/outage table.
func BenchmarkA6Metering(b *testing.B) {
	benchTable(b, experiments.A6Metering)
}

// BenchmarkA7BridgeMonitor regenerates the bridge-sensor physics table.
func BenchmarkA7BridgeMonitor(b *testing.B) {
	benchTable(b, func(uint64) experiments.Table { return experiments.A7BridgeMonitor() })
}

// BenchmarkA8GatewayMigration regenerates the gateway-swap drill.
func BenchmarkA8GatewayMigration(b *testing.B) {
	benchTable(b, experiments.A8GatewayMigration)
}

// BenchmarkA9FiftyYearTimeline regenerates the decade-by-decade diary
// chart (two 50-year end-to-end runs per iteration).
func BenchmarkA9FiftyYearTimeline(b *testing.B) {
	benchTable(b, experiments.A9FiftyYearTimeline)
}

// BenchmarkA10TrafficCoverage regenerates the intersection-coverage study.
func BenchmarkA10TrafficCoverage(b *testing.B) {
	benchTable(b, experiments.A10TrafficCoverage)
}

// BenchmarkA11Obsolescence regenerates the forced-EOL cost table.
func BenchmarkA11Obsolescence(b *testing.B) {
	benchTable(b, experiments.A11Obsolescence)
}

// BenchmarkA12BridgeLifetime regenerates the coupled bridge run (a full
// ~57-year coupled simulation per iteration).
func BenchmarkA12BridgeLifetime(b *testing.B) {
	benchTable(b, experiments.A12BridgeLifetime)
}

// BenchmarkA13SharedInfra regenerates the amortization table.
func BenchmarkA13SharedInfra(b *testing.B) {
	benchTable(b, func(uint64) experiments.Table { return experiments.A13SharedInfra() })
}

// BenchmarkA14Century regenerates the hundred-year run.
func BenchmarkA14Century(b *testing.B) {
	benchTable(b, experiments.A14Century)
}
