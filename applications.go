package centuryscale

import (
	"centuryscale/internal/airfield"
	"centuryscale/internal/concrete"
	"centuryscale/internal/core"
	"centuryscale/internal/metering"
	"centuryscale/internal/rng"
	"centuryscale/internal/traffic"
)

// Application workloads the paper motivates (§1, §2): concrete-health
// monitoring, block-granularity air-quality sensing, and advanced
// metering infrastructure. Exposed here so examples and downstream users
// can compose them with the fleet/experiment machinery.

// Concrete-health monitoring (§1, §4.1).
type (
	// Structure is a reinforced-concrete asset with curing, chloride
	// ingress, and corrosion models.
	Structure = concrete.Structure
)

// Bridge returns the ~50-year-median-service-life bridge deck.
func Bridge() Structure { return concrete.Bridge() }

// RoadDeck returns the ~25-year-median-service-life road deck.
func RoadDeck() Structure { return concrete.RoadDeck() }

// Air quality (§2).
type (
	// AirField is a synthetic ground-truth pollution field.
	AirField = airfield.Field
	// AirSample is one sensor observation of the field.
	AirSample = airfield.Sample
	// AirDensityResult is one row of a density study.
	AirDensityResult = airfield.DensityResult
)

// SyntheticAirField builds a city-scale pollution field with block-scale
// sources, deterministically from the seed.
func SyntheticAirField(sideMeters float64, nSources int, seed uint64) *AirField {
	return airfield.Synthetic(sideMeters, nSources, rng.New(seed))
}

// AirDensityStudy sweeps sensor counts over the field and reports
// reconstruction RMSE and correlation — the §2 "city-block granularity"
// analysis.
func AirDensityStudy(f *AirField, counts []int, noiseSigma float64, seed uint64) []AirDensityResult {
	return f.DensityStudy(counts, noiseSigma, rng.New(seed))
}

// Advanced metering infrastructure (§2).
type (
	// MeterFleet is a population of interval meters.
	MeterFleet = metering.Fleet
	// MeterTariff prices energy (flat and time-of-use).
	MeterTariff = metering.Tariff
	// DREvent is a demand-response request.
	DREvent = metering.DREvent
	// MeterRunResult summarises a billing-period simulation.
	MeterRunResult = metering.RunResult
	// OutageParams configures an outage-detection study.
	OutageParams = metering.OutageParams
	// OutageResult reports detection latency.
	OutageResult = metering.OutageResult
)

// NewMeterFleet builds n meters with the given demand-response
// enrollment fraction, deterministically from the seed.
func NewMeterFleet(n int, drFraction float64, seed uint64) *MeterFleet {
	return metering.NewFleet(n, drFraction, rng.New(seed))
}

// DefaultTariff returns representative flat and TOU residential rates.
func DefaultTariff() MeterTariff { return metering.DefaultTariff() }

// DetectOutage computes when the headend notices a feeder outage.
func DetectOutage(p OutageParams) OutageResult { return metering.DetectOutage(p) }

// Traffic sensing (§2).
type (
	// TrafficNetwork is a synthetic city traffic grid.
	TrafficNetwork = traffic.Network
	// TrafficCoverage is one row of a coverage study.
	TrafficCoverage = traffic.CoverageResult
)

// Traffic sampling strategies.
const (
	SampleRandom  = traffic.SampleRandom
	SampleBusiest = traffic.SampleBusiest
)

// SynthesizeTraffic routes OD trips over a gridSide×gridSide network.
func SynthesizeTraffic(gridSide, trips int, seed uint64) *TrafficNetwork {
	return traffic.Synthesize(gridSide, trips, rng.New(seed))
}

// TrafficCoverageStudy sweeps instrumented-intersection counts and
// reports citywide-estimate error per placement strategy.
func TrafficCoverageStudy(n *TrafficNetwork, counts []int, trials int, seed uint64) []TrafficCoverage {
	return n.CoverageStudy(counts, trials, rng.New(seed))
}

// The coupled bridge scenario (§1, §4.1).
type (
	// BridgeConfig parameterises the coupled structure+sensor run.
	BridgeConfig = core.BridgeConfig
	// BridgeOutcome reports it.
	BridgeOutcome = core.BridgeOutcome
)

// DefaultBridgeScenario returns the paper's initial coupled deployment.
func DefaultBridgeScenario() BridgeConfig { return core.DefaultBridge() }

// RunBridgeScenario executes the coupled simulation across the
// structure's service life.
func RunBridgeScenario(cfg BridgeConfig) *BridgeOutcome { return core.RunBridge(cfg) }
