GO ?= go

.PHONY: build test vet lint lint-pkg lint-gate lint-baseline race check bench bench-tsdb bench-obs bench-ingest bench-query smoke-obs smoke-cluster smoke-query

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Note: ./... wildcards never descend into testdata/ directories (go
# tool convention), so the lint fixture trees under
# internal/lint/*/testdata — which contain deliberate invariant
# violations — are excluded from build, vet, test, and lint alike. The
# lint loader additionally refuses testdata packages defensively.
vet:
	$(GO) vet ./...

# lint runs centurylint, the repo's own go/analysis-style suite
# (internal/lint): simdeterminism, lockedio, syncerr, seedflow, the v2
# dataflow analyzers centurytime, goroleak, ctxflow, the v3
# interprocedural concurrency analyzers lockorder, atomicmix,
# lifecycle, the v4 allocation analyzers allocbudget, allocfree, and
# waiveraudit — the determinism, durability, horizon,
# deadlock-freedom, lifetime, and allocation-budget invariants the
# century-scale argument rests on. See DESIGN.md §32–33 and §37–38
# for the invariants and the //lint: waivers.
lint:
	$(GO) run ./cmd/centurylint ./...

# lint-pkg scopes the suite to one package tree during an edit loop:
#   make lint-pkg PKG=./internal/tsdb/...
# Note the narrowed load is a partial run: cross-package findings whose
# witness lies outside PKG can't fire, and waiver staleness is not
# audited (the driver says so in a note). The full `make lint` is the
# word that counts.
lint-pkg:
	@test -n "$(PKG)" || { echo "usage: make lint-pkg PKG=./internal/...."; exit 2; }
	$(GO) run ./cmd/centurylint $(PKG)

# lint-gate is the merge gate: findings are diffed against the
# committed baseline, so only NEW violations fail the build. Matching
# ignores line numbers — unrelated edits cannot shift the gate.
lint-gate:
	$(GO) run ./cmd/centurylint -baseline lint-baseline.json ./...

# lint-baseline refreshes the committed baseline. Run this only when a
# reviewer has accepted the findings it records (ideally it stays
# empty); commit the result.
lint-baseline:
	$(GO) run ./cmd/centurylint -write-baseline lint-baseline.json ./...

# Race-enabled test run: the resilience/chaos datapath is concurrent by
# design and must stay race-clean.
race:
	$(GO) test -race ./...

# check is the pre-merge gate, run strictly in order so the first
# failure names itself: static analysis (vet, then the invariant suite
# against the baseline) before the race-enabled test suite. A lint
# failure stops everything — fix the finding, waive it with a reasoned
# //lint: directive, or (with review) refresh the baseline.
check:
	@$(MAKE) --no-print-directory vet || { echo "check: FAILED at go vet (fix before running tests)"; exit 1; }
	@$(MAKE) --no-print-directory lint-gate || { echo "check: FAILED at centurylint gate — fix the finding, add a reasoned //lint: waiver, or refresh via 'make lint-baseline' (reviewed)"; exit 1; }
	@$(MAKE) --no-print-directory race || { echo "check: FAILED in race-enabled tests"; exit 1; }
	@echo "check: OK (vet, lint-gate, race)"

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-tsdb runs the storage-engine and uplink benchmarks — the two
# datapath hot spots. Compare against the committed BENCH_tsdb.json
# baseline; regenerate that file when accepting a new baseline.
bench-tsdb:
	$(GO) test -run '^$$' -bench 'BenchmarkTSDB' -benchmem ./internal/tsdb/
	$(GO) test -run '^$$' -bench 'BenchmarkUplink' -benchmem ./internal/daemon/

# bench-obs measures the observability layer: metric primitives, the
# exposition renderer, and — the number the 5% ingest overhead budget is
# judged against — instrumented vs bare cloud ingest. Compare against
# the committed BENCH_obs.json baseline.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkObs' -benchmem ./internal/obs/
	$(GO) test -run '^$$' -bench 'BenchmarkIngest' -benchmem ./internal/cloud/

# bench-ingest measures the batched-ingest path at equal durability:
# bare one-fsync-per-packet ingest vs whole-frame WAL group commit,
# both with SyncAlways on a real WAL directory. The acceptance ratio is
# bare ns/packet over batched ns/packet >= 10x, and the batched
# allocs/op divided by the 256-packet frame must stay <= 2 per packet.
# Compare against the batching section of BENCH_obs.json.
bench-ingest:
	$(GO) test -run '^$$' -bench 'BenchmarkIngestBareSyncAlways|BenchmarkIngestBatched' -benchmem ./internal/cloud/

# bench-query runs the read-path benchmarks: a century of hourly data
# queried week-by-week from the rollup tiers vs. the same answer
# computed by scanning every raw point, plus the top-K gap scan.
# Compare against the committed BENCH_query.json baseline — the tiered
# path must stay under the 10 ms budget and an order of magnitude ahead
# of the raw scan.
bench-query:
	$(GO) test -run '^$$' -bench 'BenchmarkQueryCentury' -benchmem ./internal/query/

# smoke-query is the tiered-read-path drill against the real binary:
# endpointd with -retain-raw pumps two years of cluster-stamped virtual
# data, a checkpoint folds the old raw tail into hourly/daily buckets,
# and cmd/queryload verifies /query from outside — full coverage, daily
# tier engaged, within the latency budget — then SIGKILLs the daemon,
# reboots it from snapshot + WAL, and requires the byte-exact same
# answer.
smoke-query:
	./scripts/smoke_query.sh

# smoke-obs boots endpointd with a debug listener, scrapes /metrics and
# /healthz, and fails on a non-200 or empty exposition — the CI check
# that the flag wiring actually serves.
smoke-obs:
	./scripts/smoke_obs.sh

# smoke-cluster is the failover drill against the real binaries: three
# WAL-backed endpointd nodes behind a cluster-mode routerd (R=2, W=2),
# one SIGKILLed mid-ingest by a seeded chaos schedule and rebooted from
# its WAL. Fails on any acknowledged packet lost, on health reporting
# failed (rather than degraded) during the outage, or on a 503 in the
# post-recovery window.
smoke-cluster:
	./scripts/smoke_cluster.sh
