GO ?= go

.PHONY: build test vet lint race check bench bench-tsdb

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs centurylint, the repo's own go/analysis-style suite
# (internal/lint): simdeterminism, lockedio, syncerr, seedflow — the
# determinism and durability invariants the century-scale argument rests
# on. See DESIGN.md §32 for the invariants and the //lint: waivers.
lint:
	$(GO) run ./cmd/centurylint ./...

# Race-enabled test run: the resilience/chaos datapath is concurrent by
# design and must stay race-clean.
race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis (vet + the invariant
# suite) plus the race-enabled test suite.
check: vet lint race

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-tsdb runs the storage-engine and uplink benchmarks — the two
# datapath hot spots. Compare against the committed BENCH_tsdb.json
# baseline; regenerate that file when accepting a new baseline.
bench-tsdb:
	$(GO) test -run '^$$' -bench 'BenchmarkTSDB' -benchmem ./internal/tsdb/
	$(GO) test -run '^$$' -bench 'BenchmarkUplink' -benchmem ./internal/daemon/
