GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled test run: the resilience/chaos datapath is concurrent by
# design and must stay race-clean.
race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the race-enabled
# test suite.
check: vet race

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
