GO ?= go

.PHONY: build test vet race check bench bench-tsdb

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-enabled test run: the resilience/chaos datapath is concurrent by
# design and must stay race-clean.
race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the race-enabled
# test suite.
check: vet race

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-tsdb runs the storage-engine and uplink benchmarks — the two
# datapath hot spots. Compare against the committed BENCH_tsdb.json
# baseline; regenerate that file when accepting a new baseline.
bench-tsdb:
	$(GO) test -run '^$$' -bench 'BenchmarkTSDB' -benchmem ./internal/tsdb/
	$(GO) test -run '^$$' -bench 'BenchmarkUplink' -benchmem ./internal/daemon/
