module centuryscale

go 1.22
