module centuryscale

go 1.22

// Deliberately dependency-free. centurylint (internal/lint) would
// normally pin golang.org/x/tools for go/analysis + analysistest, but
// this repository must build with no module proxy reachable, so it
// ships a stdlib-only work-alike (see DESIGN.md §32). If a proxy ever
// becomes available, pin x/tools here and swap the internal/lint/analysis
// imports for golang.org/x/tools/go/analysis — the API matches.
